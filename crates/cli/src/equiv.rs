//! `synthir equiv` — the methodology's soundness check, as a command.
//!
//! The paper's central claim only holds if the specialized controller is
//! input/output-equivalent to the flexible one it came from. This
//! subcommand checks exactly that:
//!
//! * for KISS2 specs, two *bound* styles (`table`, `table-annotated`,
//!   `case`) are compared with [`synthir_sim::check_seq_equiv`] — reset
//!   both, drive identical input sequences, compare every output, every
//!   cycle — using the engine selected by `--engine` (random lockstep, or
//!   exact SAT-based bounded model checking);
//! * against the `programmable` style the check becomes
//!   *program-then-compare*: the flexible design's tables are first written
//!   through its config port (one word per cycle), the state register is
//!   re-reset, and only then does the lockstep comparison start — the
//!   hardware analogue of binding the generator parameters;
//! * for a pair of `.pla` files, the ON-set covers are lowered to
//!   two-level gate networks and checked combinationally. This is where
//!   the engine choice matters most: the BDD engine refuses interfaces
//!   beyond 24 input bits, random simulation cannot prove anything, and
//!   the SAT engine proves equivalence (or produces a concrete
//!   counterexample) at any width.
//!
//! `--vcd` dumps the comparison run of the left design as a waveform for
//! debugging failures.

use crate::args::Args;
use crate::fsm::Style;
use crate::{design_name, CliError, CmdResult};
use std::collections::HashMap;
use synthir_core::format_conv::from_kiss2;
use synthir_core::FsmSpec;
use synthir_logic::cube::Literal;
use synthir_logic::pla::Pla;
use synthir_netlist::{GateKind, Library, NetId, Netlist};
use synthir_rtl::elaborate;
use synthir_sim::vcd::VcdRecorder;
use synthir_sim::{
    check_comb_equiv, check_seq_equiv, EquivEngine, EquivOptions, EquivResult, SeqSim,
};
use synthir_synth::{flow::compile, flow::compile_netlist, SynthOptions};

/// Usage text for `synthir equiv`.
pub const USAGE: &str = "\
usage: synthir equiv <spec.kiss2> [options]
   or: synthir equiv <a.kiss2> <b.kiss2> [options]
   or: synthir equiv <a.pla> <b.pla> [options]

Checks input/output equivalence of two lowerings of a KISS2 spec (or of
two specs sharing an interface). Against the `programmable` style the
check programs the config tables first, then compares (program-then-
compare). Two .pla operands are compared combinationally (ON-set covers
under f-type semantics).

options:
  --engine <e>     auto (default), bdd, random, or sat. bdd proves but is
                   limited to 24 shared input bits; random proves nothing;
                   sat proves at any width (miter / bounded model check)
  --left <style>   left coding style (default table; .kiss2 only)
  --right <style>  right coding style (default programmable; .kiss2 only)
  --cycles <n>     comparison cycles for random lockstep (default 256;
                   .kiss2 only — the .pla random engine uses 64 pattern
                   words of 64 patterns each)
  --depth <k>      unrolling depth for the sat sequential engine
                   (default 8; .kiss2 only)
  --seed <s>       RNG seed for input sequences (default 0x5EED)
  --synth          compare synthesized netlists instead of elaborations
  --vcd <file>     dump the left design's comparison run as VCD (.kiss2)
";

/// Boolean flags `synthir equiv` accepts (each documented in [`USAGE`]).
pub const FLAGS: &[&str] = &["synth"];

/// Valued options `synthir equiv` accepts (each documented in [`USAGE`]).
pub const OPTIONS: &[&str] = &["engine", "left", "right", "cycles", "depth", "seed", "vcd"];

/// The verdict line printed on success.
pub const EQUIVALENT: &str = "EQUIVALENT";

/// Runs the subcommand; returns the text for stdout.
///
/// A found counterexample is reported as an error (nonzero exit), with the
/// distinguishing cycle and values in the message.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments, unparsable specs, incompatible
/// interfaces, or an inequivalence counterexample.
pub fn run(args: &Args) -> CmdResult {
    let (left_path, right_path) = match args.positionals() {
        [one] => (one.as_str(), one.as_str()),
        [l, r] => (l.as_str(), r.as_str()),
        other => {
            return Err(CliError(format!(
                "expected one or two .kiss2/.pla operands, got {}",
                other.len()
            )))
        }
    };
    let engine = match args.option("engine") {
        None => EquivEngine::Auto,
        Some(s) => EquivEngine::parse(s)
            .ok_or_else(|| CliError(format!("unknown engine `{s}` (auto, bdd, random, sat)")))?,
    };
    let is_pla = |p: &str| p.ends_with(".pla");
    match (is_pla(left_path), is_pla(right_path)) {
        (true, true) => return run_pla_pair(args, left_path, right_path, engine),
        (false, false) => {}
        _ => {
            return Err(CliError(
                "cannot mix .pla and .kiss2 operands in one check".into(),
            ))
        }
    }
    let left_style = Style::parse(args.option("left").unwrap_or("table"))?;
    let right_style = Style::parse(args.option("right").unwrap_or("programmable"))?;
    let cycles: usize = args.option_parsed("cycles", 256)?;
    let seed: u64 = args.option_parsed("seed", 0x5EED)?;
    let depth: usize = args.option_parsed("depth", 8)?;

    let read = |path: &str| -> Result<FsmSpec, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
        Ok(from_kiss2(design_name(path), &text)?)
    };
    let left_spec = read(left_path)?;
    let right_spec = read(right_path)?;
    if left_spec.num_inputs() != right_spec.num_inputs()
        || left_spec.num_outputs() != right_spec.num_outputs()
    {
        return Err(CliError(format!(
            "interface mismatch: {}×{} vs {}×{} input/output bits",
            left_spec.num_inputs(),
            left_spec.num_outputs(),
            right_spec.num_inputs(),
            right_spec.num_outputs()
        )));
    }

    let lower = |spec: &FsmSpec, style: Style| -> Result<Netlist, CliError> {
        let elab = elaborate(&style.lower(spec))?;
        if args.flag("synth") {
            Ok(compile(&elab, &Library::vt90(), &SynthOptions::default())?.netlist)
        } else {
            Ok(elab.netlist)
        }
    };
    let left_nl = lower(&left_spec, left_style)?;
    let right_nl = lower(&right_spec, right_style)?;

    let mut out = format!(
        "left  : {} ({:?}, {} gates)\nright : {} ({:?}, {} gates)\n",
        left_spec.name(),
        left_style,
        left_nl.num_gates(),
        right_spec.name(),
        right_style,
        right_nl.num_gates(),
    );

    let programmable = (
        left_style == Style::Programmable,
        right_style == Style::Programmable,
    );
    let verdict = if programmable.0 || programmable.1 {
        if engine != EquivEngine::Auto {
            out.push_str("note: --engine is ignored for program-then-compare (lockstep)\n");
        }
        lockstep_with_programming(
            &left_nl,
            &left_spec,
            programmable.0,
            &right_nl,
            &right_spec,
            programmable.1,
            cycles,
            seed,
            args.option("vcd"),
        )?
    } else {
        let mut opts = EquivOptions::new();
        opts.cycles = cycles;
        opts.seed = seed;
        opts.engine = engine;
        opts.bmc_depth = depth;
        let res = check_seq_equiv(&left_nl, &right_nl, &opts)?;
        if let Some(vcd) = args.option("vcd") {
            record_vcd(&left_nl, cycles, seed, vcd)?;
        }
        match res {
            EquivResult::Equivalent => None,
            EquivResult::Inequivalent(cex) => Some(format!(
                "output `{}` differs: left {:#x} vs right {:#x} (inputs {:?})",
                cex.output, cex.left, cex.right, cex.inputs
            )),
        }
    };

    // Only claim a proof when the BMC engine actually ran: the
    // program-then-compare path ignores --engine and is random lockstep.
    let bmc_ran = engine == EquivEngine::Sat && !programmable.0 && !programmable.1;
    match verdict {
        None => {
            out.push_str(&if bmc_ran {
                format!("{EQUIVALENT} for all input sequences up to {depth} cycles (BMC proof)\n")
            } else {
                format!("{EQUIVALENT} over {cycles} cycles (seed {seed:#x})\n")
            });
            Ok(out)
        }
        Some(msg) => Err(CliError(format!("INEQUIVALENT: {msg}"))),
    }
}

/// The `.pla`-pair path: lower both ON-set covers to two-level gate
/// networks over a shared `in`/`out` bus interface and check
/// combinationally with the selected engine.
fn run_pla_pair(args: &Args, left_path: &str, right_path: &str, engine: EquivEngine) -> CmdResult {
    for opt in ["left", "right", "vcd", "cycles", "depth"] {
        if args.option(opt).is_some() {
            return Err(CliError(format!("--{opt} does not apply to .pla operands")));
        }
    }
    let read = |path: &str| -> Result<Pla, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
        Ok(Pla::parse(&text)?)
    };
    let left = read(left_path)?;
    let right = read(right_path)?;
    if left.num_inputs != right.num_inputs || left.num_outputs != right.num_outputs {
        return Err(CliError(format!(
            "interface mismatch: {}×{} vs {}×{} input/output bits",
            left.num_inputs, left.num_outputs, right.num_inputs, right.num_outputs
        )));
    }
    let lower = |pla: &Pla, name: &str| -> Result<Netlist, CliError> {
        let nl = pla_netlist(name, pla);
        if args.flag("synth") {
            let r = compile_netlist(nl, None, &[], &Library::vt90(), &SynthOptions::default())?;
            Ok(r.netlist)
        } else {
            Ok(nl)
        }
    };
    let left_nl = lower(&left, &design_name(left_path))?;
    let right_nl = lower(&right, &design_name(right_path))?;

    let mut out = format!(
        "left  : {} ({} inputs, {} outputs, {} terms, {} gates)\nright : {} ({} inputs, {} outputs, {} terms, {} gates)\n",
        design_name(left_path),
        left.num_inputs,
        left.num_outputs,
        left.term_count(),
        left_nl.num_gates(),
        design_name(right_path),
        right.num_inputs,
        right.num_outputs,
        right.term_count(),
        right_nl.num_gates(),
    );

    let mut opts = EquivOptions::new();
    opts.engine = engine;
    opts.seed = args.option_parsed("seed", 0x5EED)?;
    match check_comb_equiv(&left_nl, &right_nl, &opts)? {
        EquivResult::Equivalent => {
            out.push_str(&match engine {
                EquivEngine::Random => format!(
                    "NO DIFFERENCE FOUND over {} random words — the random \
                     engine cannot prove equivalence\n",
                    opts.random_words
                ),
                _ => format!("{EQUIVALENT} (proved, engine {engine})\n"),
            });
            Ok(out)
        }
        EquivResult::Inequivalent(cex) => Err(CliError(format!(
            "INEQUIVALENT: output `{}` differs: left {:#x} vs right {:#x} (inputs {:?})",
            cex.output, cex.left, cex.right, cex.inputs
        ))),
    }
}

/// Lowers a PLA's ON-set covers (f-type semantics) to a flat two-level
/// gate network: one `in` bus, one `out` bus, an AND per product term and
/// an OR per output. Public so tests (and other front ends) can reuse the
/// exact lowering the `equiv` subcommand checks.
pub fn pla_netlist(name: &str, pla: &Pla) -> Netlist {
    let mut nl = Netlist::new(name);
    let ins = nl.add_input("in", pla.num_inputs);
    let fold = |nl: &mut Netlist, kind: GateKind, nets: &[NetId]| -> NetId {
        let mut acc = nets[0];
        for &n in &nets[1..] {
            acc = nl.add_gate(kind, &[acc, n]);
        }
        acc
    };
    let mut outs = Vec::with_capacity(pla.num_outputs);
    for cover in &pla.on {
        let mut terms: Vec<NetId> = Vec::with_capacity(cover.cubes().len());
        for cube in cover.cubes() {
            let mut lits: Vec<NetId> = Vec::new();
            for (v, &net) in ins.iter().enumerate() {
                match cube.literal(v) {
                    Literal::DontCare => {}
                    Literal::Positive => lits.push(net),
                    Literal::Negative => {
                        let inv = nl.add_gate(GateKind::Inv, &[net]);
                        lits.push(inv);
                    }
                }
            }
            terms.push(match lits.len() {
                0 => nl.const1(),
                _ => fold(&mut nl, GateKind::And2, &lits),
            });
        }
        outs.push(match terms.len() {
            0 => nl.const0(),
            _ => fold(&mut nl, GateKind::Or2, &terms),
        });
    }
    nl.add_output("out", &outs);
    nl
}

/// Lockstep comparison where at least one side is the programmable style:
/// program each flexible side through its config port, re-reset the state
/// registers, then drive identical random inputs and compare `out` each
/// cycle. Returns `None` on success or a counterexample description.
#[allow(clippy::too_many_arguments)]
fn lockstep_with_programming(
    left_nl: &Netlist,
    left_spec: &FsmSpec,
    left_programmable: bool,
    right_nl: &Netlist,
    right_spec: &FsmSpec,
    right_programmable: bool,
    cycles: usize,
    seed: u64,
    vcd: Option<&str>,
) -> Result<Option<String>, CliError> {
    let mut left = SeqSim::new(left_nl)?;
    let mut right = SeqSim::new(right_nl)?;

    // Phase 1: program each flexible side, one table word per cycle. The
    // bound side idles at reset (we simply don't step it).
    let program = |sim: &mut SeqSim, spec: &FsmSpec| {
        let (next_words, out_words) = spec.to_table_words();
        for addr in 0..next_words.len() {
            let mut m = HashMap::new();
            m.insert("cfg_addr".to_string(), addr as u128);
            m.insert("cfg_next".to_string(), next_words[addr]);
            m.insert("cfg_out".to_string(), out_words[addr]);
            m.insert("cfg_wen".to_string(), 1);
            sim.step(&m);
        }
        // Re-reset: the µ-state register wandered during programming; the
        // config memory flops have no reset wiring and keep their contents.
        let mut rst = HashMap::new();
        rst.insert("rst".to_string(), 1u128);
        sim.step(&rst);
    };
    if left_programmable {
        program(&mut left, left_spec);
    }
    if right_programmable {
        program(&mut right, right_spec);
    }

    // Phase 2: lockstep with identical random input sequences.
    let mut recorder = vcd.map(|_| VcdRecorder::new(left_nl, "1ns"));
    let mut rng = seed;
    let mask = if left_spec.num_inputs() >= 64 {
        u64::MAX
    } else {
        (1u64 << left_spec.num_inputs()) - 1
    };
    let mut verdict = None;
    for cycle in 0..cycles.max(1) {
        let input = (splitmix_next(&mut rng) & mask) as u128;
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), input);
        let lout = left.step(&inputs);
        let rout = right.step(&inputs);
        if let Some(rec) = recorder.as_mut() {
            rec.sample(&inputs, &lout);
        }
        if lout["out"] != rout["out"] {
            verdict = Some(format!(
                "cycle {cycle}: in={input:#x} → left out {:#x} vs right out {:#x}",
                lout["out"], rout["out"]
            ));
            break;
        }
    }
    if let (Some(rec), Some(path)) = (recorder, vcd) {
        std::fs::write(path, rec.finish())
            .map_err(|e| CliError(format!("cannot write `{path}`: {e}")))?;
    }
    Ok(verdict)
}

/// Records a standalone run of one design for `--vcd` in the bound-vs-bound
/// case (the equivalence itself is checked by `check_seq_equiv`).
fn record_vcd(nl: &Netlist, cycles: usize, seed: u64, path: &str) -> Result<(), CliError> {
    let in_width = nl
        .inputs()
        .iter()
        .find(|p| p.name == "in")
        .map(|p| p.nets.len())
        .unwrap_or(1);
    let mask = if in_width >= 64 {
        u64::MAX
    } else {
        (1u64 << in_width) - 1
    };
    let mut rng = seed;
    let text = synthir_sim::vcd::record_run(nl, cycles, |_| {
        let mut m = HashMap::new();
        m.insert("in".to_string(), (splitmix_next(&mut rng) & mask) as u128);
        m
    })?;
    std::fs::write(path, text).map_err(|e| CliError(format!("cannot write `{path}`: {e}")))?;
    Ok(())
}

/// One SplitMix64 step — the same generator as the sim crate's random
/// equivalence checks, so VCD dumps and lockstep runs share stimulus.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = ".i 1\n.o 1\n.r off\n1 off on 1\n- off off 0\n1 on off 0\n- on on 1\n.e\n";
    /// Like TOGGLE but the `on` state drives 0 — behaviourally different.
    const BROKEN: &str = ".i 1\n.o 1\n.r off\n1 off on 1\n- off off 0\n1 on off 0\n- on on 0\n.e\n";

    fn write_temp(name: &str, text: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn parse(raw: &[&str]) -> Args {
        Args::parse(
            raw,
            &["synth"],
            &["engine", "left", "right", "cycles", "depth", "seed", "vcd"],
        )
        .unwrap()
    }

    #[test]
    fn table_vs_case_is_equivalent() {
        let p = write_temp("cli_eq_tc.kiss2", TOGGLE);
        let out = run(&parse(&[&p, "--left", "table", "--right", "case"])).unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
    }

    #[test]
    fn table_vs_programmable_programs_then_compares() {
        let p = write_temp("cli_eq_tp.kiss2", TOGGLE);
        let out = run(&parse(&[&p, "--left", "table", "--right", "programmable"])).unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
    }

    #[test]
    fn synthesized_vs_programmable_is_equivalent() {
        let p = write_temp("cli_eq_sp.kiss2", TOGGLE);
        let out = run(&parse(&[
            &p,
            "--left",
            "table",
            "--right",
            "programmable",
            "--synth",
        ]))
        .unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
    }

    #[test]
    fn different_specs_are_caught() {
        let a = write_temp("cli_eq_a.kiss2", TOGGLE);
        let b = write_temp("cli_eq_b.kiss2", BROKEN);
        let e = run(&parse(&[&a, &b, "--left", "table", "--right", "table"])).unwrap_err();
        assert!(e.to_string().contains("INEQUIVALENT"), "{e}");
        // And against the programmed flexible design too.
        let e = run(&parse(&[
            &a,
            &b,
            "--left",
            "table",
            "--right",
            "programmable",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("INEQUIVALENT"), "{e}");
    }

    #[test]
    fn vcd_is_dumped() {
        let p = write_temp("cli_eq_vcd.kiss2", TOGGLE);
        let vcd = std::env::temp_dir().join("cli_eq_dump.vcd");
        let vcd_s = vcd.to_string_lossy().into_owned();
        let out = run(&parse(&[&p, "--right", "programmable", "--vcd", &vcd_s])).unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
        let text = std::fs::read_to_string(&vcd).unwrap();
        assert!(text.contains("$enddefinitions"), "{text}");
        // Bound-vs-bound path writes one too.
        let out = run(&parse(&[&p, "--right", "case", "--vcd", &vcd_s])).unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = write_temp("cli_eq_w1.kiss2", TOGGLE);
        let b = write_temp("cli_eq_w2.kiss2", ".i 2\n.o 1\n.r s\n-- s s 0\n");
        let e = run(&parse(&[&a, &b])).unwrap_err();
        assert!(e.to_string().contains("interface mismatch"), "{e}");
    }

    #[test]
    fn bmc_engine_on_kiss2_bound_styles() {
        let p = write_temp("cli_eq_bmc.kiss2", TOGGLE);
        let out = run(&parse(&[
            &p, "--left", "table", "--right", "case", "--engine", "sat", "--depth", "5",
        ]))
        .unwrap();
        assert!(out.contains("BMC proof"), "{out}");
        // A behavioural difference is caught within the unrolling.
        let a = write_temp("cli_eq_bmc_a.kiss2", TOGGLE);
        let b = write_temp("cli_eq_bmc_b.kiss2", BROKEN);
        let e = run(&parse(&[
            &a, &b, "--left", "table", "--right", "table", "--engine", "sat",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("INEQUIVALENT"), "{e}");
    }

    /// `--engine sat` on the program-then-compare path is ignored (with a
    /// note) — the verdict must not overclaim a BMC proof for what was a
    /// random lockstep run.
    #[test]
    fn programmable_path_never_claims_a_bmc_proof() {
        let p = write_temp("cli_eq_noclaim.kiss2", TOGGLE);
        let out = run(&parse(&[&p, "--right", "programmable", "--engine", "sat"])).unwrap();
        assert!(out.contains("--engine is ignored"), "{out}");
        assert!(!out.contains("BMC proof"), "{out}");
        assert!(out.contains(EQUIVALENT), "{out}");
    }

    const PLA_A: &str = ".i 3\n.o 1\n11- 1\n1-1 1\n-11 1\n.e\n";
    /// Same majority function, restated with minterm cubes.
    const PLA_B: &str = ".i 3\n.o 1\n110 1\n101 1\n011 1\n111 1\n.e\n";
    /// AND3 — differs from majority.
    const PLA_C: &str = ".i 3\n.o 1\n111 1\n.e\n";

    #[test]
    fn pla_pairs_are_checked_combinationally() {
        let a = write_temp("cli_eq_maj_a.pla", PLA_A);
        let b = write_temp("cli_eq_maj_b.pla", PLA_B);
        for engine in ["auto", "bdd", "sat"] {
            let out = run(&parse(&[&a, &b, "--engine", engine])).unwrap();
            assert!(out.contains(EQUIVALENT), "{engine}: {out}");
        }
        let c = write_temp("cli_eq_and3.pla", PLA_C);
        let e = run(&parse(&[&a, &c, "--engine", "sat"])).unwrap_err();
        assert!(e.to_string().contains("INEQUIVALENT"), "{e}");
        // Random reports the honest non-verdict.
        let out = run(&parse(&[&a, &b, "--engine", "random"])).unwrap();
        assert!(out.contains("cannot prove"), "{out}");
    }

    #[test]
    fn pla_and_kiss2_operands_cannot_mix() {
        let a = write_temp("cli_eq_mix.kiss2", TOGGLE);
        let b = write_temp("cli_eq_mix.pla", PLA_A);
        let e = run(&parse(&[&a, &b])).unwrap_err();
        assert!(e.to_string().contains("cannot mix"), "{e}");
        // And kiss2-only options do not apply to PLA pairs — including the
        // sequential knobs, which would otherwise be silently ignored.
        let c = write_temp("cli_eq_mix2.pla", PLA_B);
        for bad in [["--left", "table"], ["--depth", "3"], ["--cycles", "9"]] {
            let e = run(&parse(&[&b, &c, bad[0], bad[1]])).unwrap_err();
            assert!(e.to_string().contains("does not apply"), "{bad:?}: {e}");
        }
    }

    #[test]
    fn unknown_engine_is_an_error() {
        let a = write_temp("cli_eq_engine.kiss2", TOGGLE);
        let e = run(&parse(&[&a, "--engine", "quantum"])).unwrap_err();
        assert!(e.to_string().contains("unknown engine"), "{e}");
    }
}
