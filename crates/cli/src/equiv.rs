//! `synthir equiv` — the methodology's soundness check, as a command.
//!
//! The paper's central claim only holds if the specialized controller is
//! input/output-equivalent to the flexible one it came from. This
//! subcommand checks exactly that for KISS2 specs:
//!
//! * two *bound* styles (`table`, `table-annotated`, `case`) are compared
//!   with [`synthir_sim::check_seq_equiv`] — reset both, drive identical
//!   random input sequences, compare every output, every cycle;
//! * against the `programmable` style the check becomes
//!   *program-then-compare*: the flexible design's tables are first written
//!   through its config port (one word per cycle), the state register is
//!   re-reset, and only then does the lockstep comparison start — the
//!   hardware analogue of binding the generator parameters.
//!
//! `--vcd` dumps the comparison run of the left design as a waveform for
//! debugging failures.

use crate::args::Args;
use crate::fsm::Style;
use crate::{design_name, CliError, CmdResult};
use std::collections::HashMap;
use synthir_core::format_conv::from_kiss2;
use synthir_core::FsmSpec;
use synthir_netlist::{Library, Netlist};
use synthir_rtl::elaborate;
use synthir_sim::vcd::VcdRecorder;
use synthir_sim::{check_seq_equiv, EquivOptions, SeqSim};
use synthir_synth::{flow::compile, SynthOptions};

/// Usage text for `synthir equiv`.
pub const USAGE: &str = "\
usage: synthir equiv <spec.kiss2> [options]
   or: synthir equiv <a.kiss2> <b.kiss2> [options]

Checks input/output equivalence of two lowerings of a KISS2 spec (or of
two specs sharing an interface). Against the `programmable` style the
check programs the config tables first, then compares (program-then-
compare).

options:
  --left <style>   left coding style (default table)
  --right <style>  right coding style (default programmable)
  --cycles <n>     comparison cycles (default 256)
  --seed <s>       RNG seed for input sequences (default 0x5EED)
  --synth          compare synthesized netlists instead of elaborations
  --vcd <file>     dump the left design's comparison run as VCD
";

/// The verdict line printed on success.
pub const EQUIVALENT: &str = "EQUIVALENT";

/// Runs the subcommand; returns the text for stdout.
///
/// A found counterexample is reported as an error (nonzero exit), with the
/// distinguishing cycle and values in the message.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments, unparsable specs, incompatible
/// interfaces, or an inequivalence counterexample.
pub fn run(args: &Args) -> CmdResult {
    let (left_path, right_path) = match args.positionals() {
        [one] => (one.as_str(), one.as_str()),
        [l, r] => (l.as_str(), r.as_str()),
        other => {
            return Err(CliError(format!(
                "expected one or two .kiss2 operands, got {}",
                other.len()
            )))
        }
    };
    let left_style = Style::parse(args.option("left").unwrap_or("table"))?;
    let right_style = Style::parse(args.option("right").unwrap_or("programmable"))?;
    let cycles: usize = args.option_parsed("cycles", 256)?;
    let seed: u64 = args.option_parsed("seed", 0x5EED)?;

    let read = |path: &str| -> Result<FsmSpec, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
        Ok(from_kiss2(design_name(path), &text)?)
    };
    let left_spec = read(left_path)?;
    let right_spec = read(right_path)?;
    if left_spec.num_inputs() != right_spec.num_inputs()
        || left_spec.num_outputs() != right_spec.num_outputs()
    {
        return Err(CliError(format!(
            "interface mismatch: {}×{} vs {}×{} input/output bits",
            left_spec.num_inputs(),
            left_spec.num_outputs(),
            right_spec.num_inputs(),
            right_spec.num_outputs()
        )));
    }

    let lower = |spec: &FsmSpec, style: Style| -> Result<Netlist, CliError> {
        let elab = elaborate(&style.lower(spec))?;
        if args.flag("synth") {
            Ok(compile(&elab, &Library::vt90(), &SynthOptions::default())?.netlist)
        } else {
            Ok(elab.netlist)
        }
    };
    let left_nl = lower(&left_spec, left_style)?;
    let right_nl = lower(&right_spec, right_style)?;

    let mut out = format!(
        "left  : {} ({:?}, {} gates)\nright : {} ({:?}, {} gates)\n",
        left_spec.name(),
        left_style,
        left_nl.num_gates(),
        right_spec.name(),
        right_style,
        right_nl.num_gates(),
    );

    let programmable = (
        left_style == Style::Programmable,
        right_style == Style::Programmable,
    );
    let verdict = if programmable.0 || programmable.1 {
        lockstep_with_programming(
            &left_nl,
            &left_spec,
            programmable.0,
            &right_nl,
            &right_spec,
            programmable.1,
            cycles,
            seed,
            args.option("vcd"),
        )?
    } else {
        let mut opts = EquivOptions::new();
        opts.cycles = cycles;
        opts.seed = seed;
        let res = check_seq_equiv(&left_nl, &right_nl, &opts)?;
        if let Some(vcd) = args.option("vcd") {
            record_vcd(&left_nl, cycles, seed, vcd)?;
        }
        match res {
            synthir_sim::EquivResult::Equivalent => None,
            synthir_sim::EquivResult::Inequivalent(cex) => Some(format!(
                "output `{}` differs: left {:#x} vs right {:#x} (inputs {:?})",
                cex.output, cex.left, cex.right, cex.inputs
            )),
        }
    };

    match verdict {
        None => {
            out.push_str(&format!(
                "{EQUIVALENT} over {cycles} cycles (seed {seed:#x})\n"
            ));
            Ok(out)
        }
        Some(msg) => Err(CliError(format!("INEQUIVALENT: {msg}"))),
    }
}

/// Lockstep comparison where at least one side is the programmable style:
/// program each flexible side through its config port, re-reset the state
/// registers, then drive identical random inputs and compare `out` each
/// cycle. Returns `None` on success or a counterexample description.
#[allow(clippy::too_many_arguments)]
fn lockstep_with_programming(
    left_nl: &Netlist,
    left_spec: &FsmSpec,
    left_programmable: bool,
    right_nl: &Netlist,
    right_spec: &FsmSpec,
    right_programmable: bool,
    cycles: usize,
    seed: u64,
    vcd: Option<&str>,
) -> Result<Option<String>, CliError> {
    let mut left = SeqSim::new(left_nl)?;
    let mut right = SeqSim::new(right_nl)?;

    // Phase 1: program each flexible side, one table word per cycle. The
    // bound side idles at reset (we simply don't step it).
    let program = |sim: &mut SeqSim, spec: &FsmSpec| {
        let (next_words, out_words) = spec.to_table_words();
        for addr in 0..next_words.len() {
            let mut m = HashMap::new();
            m.insert("cfg_addr".to_string(), addr as u128);
            m.insert("cfg_next".to_string(), next_words[addr]);
            m.insert("cfg_out".to_string(), out_words[addr]);
            m.insert("cfg_wen".to_string(), 1);
            sim.step(&m);
        }
        // Re-reset: the µ-state register wandered during programming; the
        // config memory flops have no reset wiring and keep their contents.
        let mut rst = HashMap::new();
        rst.insert("rst".to_string(), 1u128);
        sim.step(&rst);
    };
    if left_programmable {
        program(&mut left, left_spec);
    }
    if right_programmable {
        program(&mut right, right_spec);
    }

    // Phase 2: lockstep with identical random input sequences.
    let mut recorder = vcd.map(|_| VcdRecorder::new(left_nl, "1ns"));
    let mut rng = seed;
    let mask = if left_spec.num_inputs() >= 64 {
        u64::MAX
    } else {
        (1u64 << left_spec.num_inputs()) - 1
    };
    let mut verdict = None;
    for cycle in 0..cycles.max(1) {
        let input = (splitmix_next(&mut rng) & mask) as u128;
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), input);
        let lout = left.step(&inputs);
        let rout = right.step(&inputs);
        if let Some(rec) = recorder.as_mut() {
            rec.sample(&inputs, &lout);
        }
        if lout["out"] != rout["out"] {
            verdict = Some(format!(
                "cycle {cycle}: in={input:#x} → left out {:#x} vs right out {:#x}",
                lout["out"], rout["out"]
            ));
            break;
        }
    }
    if let (Some(rec), Some(path)) = (recorder, vcd) {
        std::fs::write(path, rec.finish())
            .map_err(|e| CliError(format!("cannot write `{path}`: {e}")))?;
    }
    Ok(verdict)
}

/// Records a standalone run of one design for `--vcd` in the bound-vs-bound
/// case (the equivalence itself is checked by `check_seq_equiv`).
fn record_vcd(nl: &Netlist, cycles: usize, seed: u64, path: &str) -> Result<(), CliError> {
    let in_width = nl
        .inputs()
        .iter()
        .find(|p| p.name == "in")
        .map(|p| p.nets.len())
        .unwrap_or(1);
    let mask = if in_width >= 64 {
        u64::MAX
    } else {
        (1u64 << in_width) - 1
    };
    let mut rng = seed;
    let text = synthir_sim::vcd::record_run(nl, cycles, |_| {
        let mut m = HashMap::new();
        m.insert("in".to_string(), (splitmix_next(&mut rng) & mask) as u128);
        m
    })?;
    std::fs::write(path, text).map_err(|e| CliError(format!("cannot write `{path}`: {e}")))?;
    Ok(())
}

/// One SplitMix64 step — the same generator as the sim crate's random
/// equivalence checks, so VCD dumps and lockstep runs share stimulus.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = ".i 1\n.o 1\n.r off\n1 off on 1\n- off off 0\n1 on off 0\n- on on 1\n.e\n";
    /// Like TOGGLE but the `on` state drives 0 — behaviourally different.
    const BROKEN: &str = ".i 1\n.o 1\n.r off\n1 off on 1\n- off off 0\n1 on off 0\n- on on 0\n.e\n";

    fn write_temp(name: &str, text: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn parse(raw: &[&str]) -> Args {
        Args::parse(raw, &["synth"], &["left", "right", "cycles", "seed", "vcd"]).unwrap()
    }

    #[test]
    fn table_vs_case_is_equivalent() {
        let p = write_temp("cli_eq_tc.kiss2", TOGGLE);
        let out = run(&parse(&[&p, "--left", "table", "--right", "case"])).unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
    }

    #[test]
    fn table_vs_programmable_programs_then_compares() {
        let p = write_temp("cli_eq_tp.kiss2", TOGGLE);
        let out = run(&parse(&[&p, "--left", "table", "--right", "programmable"])).unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
    }

    #[test]
    fn synthesized_vs_programmable_is_equivalent() {
        let p = write_temp("cli_eq_sp.kiss2", TOGGLE);
        let out = run(&parse(&[
            &p,
            "--left",
            "table",
            "--right",
            "programmable",
            "--synth",
        ]))
        .unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
    }

    #[test]
    fn different_specs_are_caught() {
        let a = write_temp("cli_eq_a.kiss2", TOGGLE);
        let b = write_temp("cli_eq_b.kiss2", BROKEN);
        let e = run(&parse(&[&a, &b, "--left", "table", "--right", "table"])).unwrap_err();
        assert!(e.to_string().contains("INEQUIVALENT"), "{e}");
        // And against the programmed flexible design too.
        let e = run(&parse(&[
            &a,
            &b,
            "--left",
            "table",
            "--right",
            "programmable",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("INEQUIVALENT"), "{e}");
    }

    #[test]
    fn vcd_is_dumped() {
        let p = write_temp("cli_eq_vcd.kiss2", TOGGLE);
        let vcd = std::env::temp_dir().join("cli_eq_dump.vcd");
        let vcd_s = vcd.to_string_lossy().into_owned();
        let out = run(&parse(&[&p, "--right", "programmable", "--vcd", &vcd_s])).unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
        let text = std::fs::read_to_string(&vcd).unwrap();
        assert!(text.contains("$enddefinitions"), "{text}");
        // Bound-vs-bound path writes one too.
        let out = run(&parse(&[&p, "--right", "case", "--vcd", &vcd_s])).unwrap();
        assert!(out.contains(EQUIVALENT), "{out}");
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let a = write_temp("cli_eq_w1.kiss2", TOGGLE);
        let b = write_temp("cli_eq_w2.kiss2", ".i 2\n.o 1\n.r s\n-- s s 0\n");
        let e = run(&parse(&[&a, &b])).unwrap_err();
        assert!(e.to_string().contains("interface mismatch"), "{e}");
    }
}
