//! `synthir pla` — espresso-format two-level minimization.
//!
//! Reads a `.pla` file (any of the `f`/`fd`/`fr`/`fdr` output semantics),
//! minimizes every output with the URP espresso kernel, and writes the
//! minimized `f`-type PLA back out — the classic `espresso in.pla >
//! out.pla` loop, backed by this workspace's kernel.

use crate::args::Args;
use crate::{CliError, CmdResult};
use synthir_logic::espresso::EspressoOptions;
use synthir_logic::pla::Pla;

/// Usage text for `synthir pla`.
pub const USAGE: &str = "\
usage: synthir pla <in.pla> [options]

Reads an espresso-format PLA (.type f, fd, fr, or fdr), minimizes every
output with the URP kernel, and writes the minimized f-type PLA.

options:
  -o <file>       write the minimized PLA to <file> (default: stdout)
  --stats         print term/literal statistics instead of the PLA
  --echo          parse and re-render without minimizing (format check)
";

/// Boolean flags `synthir pla` accepts (each documented in [`USAGE`]).
pub const FLAGS: &[&str] = &["stats", "echo"];

/// Valued options `synthir pla` accepts (each documented in [`USAGE`]).
pub const OPTIONS: &[&str] = &["o"];

/// Runs the subcommand; returns the text for stdout.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments or unparsable input.
pub fn run(args: &Args) -> CmdResult {
    let [path] = args.expect_positionals(1, "one <in.pla> operand")? else {
        unreachable!()
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    let pla = Pla::parse(&text)?;
    let result = if args.flag("echo") {
        pla.clone()
    } else {
        pla.minimized(&EspressoOptions::default())
    };

    let mut out = String::new();
    if args.flag("stats") {
        let before: usize = pla.term_count();
        let after: usize = result.term_count();
        let lits_before: usize = pla.on.iter().map(|c| c.literal_count()).sum();
        let lits_after: usize = result.on.iter().map(|c| c.literal_count()).sum();
        out.push_str(&format!(
            "{} inputs, {} outputs (.type {})\nterms    : {before} → {after}\nliterals : {lits_before} → {lits_after}\n",
            pla.num_inputs,
            pla.num_outputs,
            pla.kind.as_str(),
        ));
    }
    match args.option("o") {
        // With --stats and no explicit file, the statistics replace the
        // PLA text (and the render pass is skipped entirely).
        Some("-") | None if !args.flag("stats") => out.push_str(&result.render()),
        Some("-") | None => {}
        Some(opath) => {
            std::fs::write(opath, result.render())
                .map_err(|e| CliError(format!("cannot write `{opath}`: {e}")))?;
            out.push_str(&format!("wrote {opath} ({} terms)\n", result.term_count()));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, text: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn minimizes_a_redundant_cover() {
        // Four minterm cubes of a 2-var tautology → one universe cube.
        let path = write_temp(
            "cli_pla_taut.pla",
            ".i 2\n.o 1\n00 1\n01 1\n10 1\n11 1\n.e\n",
        );
        let args = Args::parse(&[path.as_str()], &["stats", "echo"], &["o"]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains(".p 1"), "{out}");
        assert!(out.contains("-- 1"), "{out}");
    }

    #[test]
    fn fr_dont_cares_are_exploited() {
        // ON {11}, OFF {00}: with 01/10 as DC the cover can be one cube.
        let path = write_temp("cli_pla_fr.pla", ".i 2\n.o 1\n.type fr\n11 1\n00 0\n.e\n");
        let args = Args::parse(
            &[path.as_str(), "--stats", "-o", "-"],
            &["stats", "echo"],
            &["o"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("terms    : 2 → 1"), "{out}");
    }

    #[test]
    fn echo_round_trips() {
        let src = ".i 2\n.o 2\n.ilb a b\n.ob x y\n.type fd\n.p 2\n11 1-\n0- -1\n.e\n";
        let path = write_temp("cli_pla_echo.pla", src);
        let args = Args::parse(&[path.as_str(), "--echo"], &["stats", "echo"], &["o"]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains(".ilb a b"), "{out}");
        assert!(out.contains(".type fd"), "{out}");
        let again = Pla::parse(&out).unwrap();
        assert_eq!(again, Pla::parse(src).unwrap());
    }

    #[test]
    fn output_file_is_written() {
        let path = write_temp("cli_pla_out.pla", ".i 1\n.o 1\n1 1\n.e\n");
        let opath = write_temp("cli_pla_out_min.pla", "");
        let args = Args::parse(
            &[path.as_str(), "-o", opath.as_str()],
            &["stats", "echo"],
            &["o"],
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let written = std::fs::read_to_string(&opath).unwrap();
        assert!(written.contains(".i 1"), "{written}");
    }
}
