//! End-to-end runs of every shipped benchmark through the CLI pipelines —
//! the offline demonstration the README promises, as a test.

use synthir_cli::args::Args;
use synthir_cli::{equiv, fsm, pla, ucode};

fn bench_path(name: &str) -> String {
    format!("{}/../../benchmarks/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn kiss2_benchmarks() -> Vec<String> {
    let dir = format!("{}/../../benchmarks", env!("CARGO_MANIFEST_DIR"));
    let mut v: Vec<String> = std::fs::read_dir(dir)
        .expect("benchmarks/ exists")
        .filter_map(|e| Some(e.ok()?.path().to_string_lossy().into_owned()))
        .filter(|p| p.ends_with(".kiss2"))
        .collect();
    v.sort();
    assert!(
        v.len() >= 3,
        "expected at least 3 KISS2 benchmarks, got {v:?}"
    );
    v
}

/// The ISSUE's acceptance flow: `synthir fsm <x>.kiss2 --style table -o
/// out.v --report` runs end-to-end, and the emitted module is equivalent to
/// the programmable baseline under `synthir equiv`.
#[test]
fn every_kiss2_benchmark_synthesizes_and_matches_programmable_baseline() {
    for path in kiss2_benchmarks() {
        let out_v = std::env::temp_dir().join(format!(
            "bench_{}.v",
            std::path::Path::new(&path)
                .file_stem()
                .unwrap()
                .to_string_lossy()
        ));
        let out_v = out_v.to_string_lossy().into_owned();
        let args = Args::parse(
            &[
                path.as_str(),
                "--style",
                "table",
                "-o",
                out_v.as_str(),
                "--report",
            ],
            &["report", "no-synth"],
            &["style", "o", "clock"],
        )
        .unwrap();
        let out = fsm::run(&args).unwrap();
        assert!(out.contains("area"), "{path}: {out}");
        let verilog = std::fs::read_to_string(&out_v).unwrap();
        assert!(verilog.contains("module "), "{path}: no module in {out_v}");

        let eq_args = Args::parse(
            &[
                path.as_str(),
                "--left",
                "table",
                "--right",
                "programmable",
                "--synth",
            ],
            &["synth"],
            &["left", "right", "cycles", "seed", "vcd"],
        )
        .unwrap();
        let eq = equiv::run(&eq_args).unwrap();
        assert!(eq.contains(equiv::EQUIVALENT), "{path}: {eq}");
    }
}

/// Every KISS2 benchmark also agrees across all three bound styles.
#[test]
fn kiss2_benchmarks_agree_across_bound_styles() {
    for path in kiss2_benchmarks() {
        for style in ["table-annotated", "case"] {
            let args = Args::parse(
                &[path.as_str(), "--left", "table", "--right", style],
                &["synth"],
                &["left", "right", "cycles", "seed", "vcd"],
            )
            .unwrap();
            let out = equiv::run(&args).unwrap();
            assert!(out.contains(equiv::EQUIVALENT), "{path} vs {style}: {out}");
        }
    }
}

#[test]
fn pla_benchmarks_minimize() {
    for (name, expect_fewer) in [("majority.pla", false), ("one_hot.pla", true)] {
        let path = bench_path(name);
        let args = Args::parse(&[path.as_str(), "--stats"], &["stats", "echo"], &["o"]).unwrap();
        let out = pla::run(&args).unwrap();
        assert!(out.contains("terms"), "{name}: {out}");
        if expect_fewer {
            // The fr-type benchmark has exploitable don't-cares.
            let nums: Vec<usize> = out
                .lines()
                .find(|l| l.starts_with("terms"))
                .unwrap()
                .split(|c: char| !c.is_ascii_digit())
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().unwrap())
                .collect();
            assert!(nums[1] < nums[0], "{name}: {out}");
        }
    }
}

#[test]
fn ucode_benchmark_assembles_and_synthesizes() {
    let path = bench_path("dma_copy.uasm");
    let args = Args::parse(
        &[path.as_str(), "--report", "--disasm"],
        &[
            "report",
            "flexible",
            "register-outputs",
            "annotate",
            "disasm",
        ],
        &["o", "clock"],
    )
    .unwrap();
    let out = ucode::run(&args).unwrap();
    assert!(out.contains("instructions"), "{out}");
    assert!(out.contains("area"), "{out}");
}
