//! End-to-end runs of every shipped benchmark through the CLI pipelines —
//! the offline demonstration the README promises, as a test.

use synthir_cli::args::Args;
use synthir_cli::{equiv, fsm, pla, ucode};

fn bench_path(name: &str) -> String {
    format!("{}/../../benchmarks/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn kiss2_benchmarks() -> Vec<String> {
    let dir = format!("{}/../../benchmarks", env!("CARGO_MANIFEST_DIR"));
    let mut v: Vec<String> = std::fs::read_dir(dir)
        .expect("benchmarks/ exists")
        .filter_map(|e| Some(e.ok()?.path().to_string_lossy().into_owned()))
        .filter(|p| p.ends_with(".kiss2"))
        .collect();
    v.sort();
    assert!(
        v.len() >= 3,
        "expected at least 3 KISS2 benchmarks, got {v:?}"
    );
    v
}

/// The ISSUE's acceptance flow: `synthir fsm <x>.kiss2 --style table -o
/// out.v --report` runs end-to-end, and the emitted module is equivalent to
/// the programmable baseline under `synthir equiv`.
#[test]
fn every_kiss2_benchmark_synthesizes_and_matches_programmable_baseline() {
    for path in kiss2_benchmarks() {
        let out_v = std::env::temp_dir().join(format!(
            "bench_{}.v",
            std::path::Path::new(&path)
                .file_stem()
                .unwrap()
                .to_string_lossy()
        ));
        let out_v = out_v.to_string_lossy().into_owned();
        let args = Args::parse(
            &[
                path.as_str(),
                "--style",
                "table",
                "-o",
                out_v.as_str(),
                "--report",
            ],
            &["report", "no-synth"],
            &["style", "o", "clock"],
        )
        .unwrap();
        let out = fsm::run(&args).unwrap();
        assert!(out.contains("area"), "{path}: {out}");
        let verilog = std::fs::read_to_string(&out_v).unwrap();
        assert!(verilog.contains("module "), "{path}: no module in {out_v}");

        let eq_args = Args::parse(
            &[
                path.as_str(),
                "--left",
                "table",
                "--right",
                "programmable",
                "--synth",
            ],
            &["synth"],
            &["left", "right", "cycles", "seed", "vcd"],
        )
        .unwrap();
        let eq = equiv::run(&eq_args).unwrap();
        assert!(eq.contains(equiv::EQUIVALENT), "{path}: {eq}");
    }
}

/// Every KISS2 benchmark also agrees across all three bound styles.
#[test]
fn kiss2_benchmarks_agree_across_bound_styles() {
    for path in kiss2_benchmarks() {
        for style in ["table-annotated", "case"] {
            let args = Args::parse(
                &[path.as_str(), "--left", "table", "--right", style],
                &["synth"],
                &["left", "right", "cycles", "seed", "vcd"],
            )
            .unwrap();
            let out = equiv::run(&args).unwrap();
            assert!(out.contains(equiv::EQUIVALENT), "{path} vs {style}: {out}");
        }
    }
}

#[test]
fn pla_benchmarks_minimize() {
    for (name, expect_fewer) in [("majority.pla", false), ("one_hot.pla", true)] {
        let path = bench_path(name);
        let args = Args::parse(&[path.as_str(), "--stats"], &["stats", "echo"], &["o"]).unwrap();
        let out = pla::run(&args).unwrap();
        assert!(out.contains("terms"), "{name}: {out}");
        if expect_fewer {
            // The fr-type benchmark has exploitable don't-cares.
            let nums: Vec<usize> = out
                .lines()
                .find(|l| l.starts_with("terms"))
                .unwrap()
                .split(|c: char| !c.is_ascii_digit())
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().unwrap())
                .collect();
            assert!(nums[1] < nums[0], "{name}: {out}");
        }
    }
}

fn equiv_args(raw: &[&str]) -> Args {
    Args::parse(
        raw,
        &["synth"],
        &["engine", "left", "right", "cycles", "depth", "seed", "vcd"],
    )
    .unwrap()
}

/// The wide pair: 32 shared input bits, beyond the BDD engine's 24-bit
/// limit. The SAT engine proves equivalence, the BDD engine refuses, and
/// the random engine cannot prove (it reports only the absence of a found
/// difference).
#[test]
fn wide_pla_pair_is_proved_by_sat_only() {
    let a = bench_path("wide_ctrl_a.pla");
    let b = bench_path("wide_ctrl_b.pla");

    let out = equiv::run(&equiv_args(&[&a, &b, "--engine", "sat"])).unwrap();
    assert!(out.contains("EQUIVALENT (proved, engine sat)"), "{out}");

    // Auto routes to SAT beyond the BDD limit and still proves.
    let out = equiv::run(&equiv_args(&[&a, &b])).unwrap();
    assert!(out.contains("proved"), "{out}");

    let err = equiv::run(&equiv_args(&[&a, &b, "--engine", "bdd"])).unwrap_err();
    assert!(err.to_string().contains("engine limit"), "{err}");

    let out = equiv::run(&equiv_args(&[&a, &b, "--engine", "random"])).unwrap();
    assert!(out.contains("cannot prove"), "{out}");
}

/// Injecting an inequivalence (dropping one product term) yields a concrete
/// SAT counterexample.
#[test]
fn wide_pla_injected_inequivalence_yields_counterexample() {
    let a = bench_path("wide_ctrl_a.pla");
    let text = std::fs::read_to_string(bench_path("wide_ctrl_b.pla")).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    let last_term = lines
        .iter()
        .rposition(|l| !l.is_empty() && !l.starts_with('.') && !l.starts_with('#'))
        .expect("term lines");
    lines.remove(last_term);
    let broken: String = lines
        .iter()
        .map(|l| if l.starts_with(".p") { ".p 39" } else { l })
        .collect::<Vec<_>>()
        .join("\n");
    let path = std::env::temp_dir().join("bench_wide_ctrl_b_broken.pla");
    std::fs::write(&path, broken + "\n").unwrap();
    let path = path.to_string_lossy().into_owned();

    let err = equiv::run(&equiv_args(&[&a, &path, "--engine", "sat"])).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("INEQUIVALENT"), "{msg}");
    assert!(msg.contains("inputs"), "{msg}");
}

/// The wide pair stays equivalent through the full synthesis flow
/// (`--synth`), SAT-checked — partial evaluation is sound at widths the
/// BDD engine cannot reach.
#[test]
fn wide_pla_pair_survives_synthesis() {
    let a = bench_path("wide_ctrl_a.pla");
    let b = bench_path("wide_ctrl_b.pla");
    let out = equiv::run(&equiv_args(&[&a, &b, "--engine", "sat", "--synth"])).unwrap();
    assert!(out.contains("proved"), "{out}");
}

/// BMC (`--engine sat`) agrees with random lockstep on the KISS2
/// benchmarks' bound styles.
#[test]
fn kiss2_benchmarks_bmc_proves_bound_styles() {
    for path in kiss2_benchmarks() {
        let out = equiv::run(&equiv_args(&[
            &path, "--left", "table", "--right", "case", "--engine", "sat", "--depth", "5",
        ]))
        .unwrap();
        assert!(out.contains("BMC proof"), "{path}: {out}");
    }
}

#[test]
fn ucode_benchmark_assembles_and_synthesizes() {
    let path = bench_path("dma_copy.uasm");
    let args = Args::parse(
        &[path.as_str(), "--report", "--disasm"],
        &[
            "report",
            "flexible",
            "register-outputs",
            "annotate",
            "disasm",
        ],
        &["o", "clock"],
    )
    .unwrap();
    let out = ucode::run(&args).unwrap();
    assert!(out.contains("instructions"), "{out}");
    assert!(out.contains("area"), "{out}");
}

/// The AIG pipeline result on every shipped controller is proved
/// equivalent to the original (pre-AIG) pass order by the SAT engine, with
/// equal-or-smaller area — the acceptance bar for the AIG optimization
/// core — and the verified flow (`verify_each_pass`) stays green with the
/// AIG passes (SAT sweeping included) in the loop.
#[test]
fn aig_pipeline_matches_seed_pipeline_on_all_benchmarks() {
    use synthir_core::format_conv::from_kiss2;
    use synthir_netlist::Library;
    use synthir_rtl::elaborate;
    use synthir_sim::{check_seq_equiv, EquivEngine, EquivOptions};
    use synthir_synth::{compile, SynthOptions};

    let lib = Library::vt90();
    for path in kiss2_benchmarks() {
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = from_kiss2("bench", &text).unwrap();
        let elab = elaborate(&spec.to_table_module(true)).unwrap();
        let r_aig = compile(&elab, &lib, &SynthOptions::default()).unwrap();
        let r_seed = compile(&elab, &lib, &SynthOptions::default().without_aig()).unwrap();
        let mut eopts = EquivOptions::new();
        eopts.engine = EquivEngine::Sat;
        let res = check_seq_equiv(&r_aig.netlist, &r_seed.netlist, &eopts).unwrap();
        assert!(res.is_equivalent(), "{path}: pipelines diverge");
        assert!(
            r_aig.area.total() <= r_seed.area.total() * 1.001,
            "{path}: aig {:.1} µm² vs seed {:.1} µm²",
            r_aig.area.total(),
            r_seed.area.total()
        );
        // Verified flows: every AIG pass is SAT-checked against its
        // predecessor, with and without sweeping.
        let verified = SynthOptions::default().with_verify_each_pass();
        compile(&elab, &lib, &verified).unwrap();
        let swept = SynthOptions::default()
            .with_sat_sweep()
            .with_verify_each_pass();
        compile(&elab, &lib, &swept).unwrap();
    }
}

/// The ISSUE 5 acceptance bar: on every shipped controller, the cut-based
/// mapper (`--mapper cuts`) produces a netlist proved equivalent to the
/// rule mapper's by the exact engines — SAT for sequential designs, SAT
/// *and* BDD for combinational ones within the BDD width limit — and its
/// area is equal or smaller on at least half of the workloads.
#[test]
fn cut_mapper_matches_rule_mapper_on_every_controller() {
    use synthir_cli::equiv::pla_netlist;
    use synthir_core::format_conv::from_kiss2;
    use synthir_logic::pla::Pla;
    use synthir_netlist::Library;
    use synthir_rtl::elaborate;
    use synthir_sim::{check_comb_equiv, check_seq_equiv, EquivEngine, EquivOptions};
    use synthir_synth::{compile, flow::compile_netlist, SynthOptions};

    let lib = Library::vt90();
    let rules = SynthOptions::default();
    let cuts = SynthOptions::default().with_cut_mapper();
    let mut sat = EquivOptions::new();
    sat.engine = EquivEngine::Sat;
    let mut bdd = EquivOptions::new();
    bdd.engine = EquivEngine::Bdd;

    let mut total = 0usize;
    let mut cuts_wins_or_ties = 0usize;

    // KISS2 controllers, bound and programmable lowerings: sequential
    // SAT proof (BMC from reset).
    for path in kiss2_benchmarks() {
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = from_kiss2("bench", &text).unwrap();
        for (style, module) in [
            ("table", spec.to_table_module(true)),
            ("programmable", spec.to_programmable_module()),
        ] {
            let elab = elaborate(&module).unwrap();
            let r_rules = compile(&elab, &lib, &rules).unwrap();
            let r_cuts = compile(&elab, &lib, &cuts).unwrap();
            assert!(
                r_cuts.stats.iter().any(|s| s.name == "cutmap"),
                "{path} {style}: cutmap pass missing from stats"
            );
            let res = check_seq_equiv(&r_rules.netlist, &r_cuts.netlist, &sat).unwrap();
            assert!(res.is_equivalent(), "{path} {style}: mappers diverge");
            total += 1;
            if r_cuts.area.total() <= r_rules.area.total() + 1e-9 {
                cuts_wins_or_ties += 1;
            }
        }
    }

    // PLA controllers: combinational SAT proof, plus the BDD engine
    // wherever the interface fits under its 24-bit limit.
    let dir = format!("{}/../../benchmarks", env!("CARGO_MANIFEST_DIR"));
    let mut plas: Vec<String> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path().to_string_lossy().into_owned()))
        .filter(|p| p.ends_with(".pla"))
        .collect();
    plas.sort();
    assert!(plas.len() >= 2, "expected PLA benchmarks, got {plas:?}");
    for path in plas {
        let text = std::fs::read_to_string(&path).unwrap();
        let pla = Pla::parse(&text).unwrap();
        let nl = pla_netlist("ctrl", &pla);
        let r_rules = compile_netlist(nl.clone(), None, &[], &lib, &rules).unwrap();
        let r_cuts = compile_netlist(nl, None, &[], &lib, &cuts).unwrap();
        let res = check_comb_equiv(&r_rules.netlist, &r_cuts.netlist, &sat).unwrap();
        assert!(res.is_equivalent(), "{path}: mappers diverge (SAT)");
        if pla.num_inputs <= 24 {
            let res = check_comb_equiv(&r_rules.netlist, &r_cuts.netlist, &bdd).unwrap();
            assert!(res.is_equivalent(), "{path}: mappers diverge (BDD)");
        }
        total += 1;
        if r_cuts.area.total() <= r_rules.area.total() + 1e-9 {
            cuts_wins_or_ties += 1;
        }
    }

    assert!(
        cuts_wins_or_ties * 2 >= total,
        "cut mapper larger on too many controllers: {cuts_wins_or_ties}/{total} equal-or-smaller"
    );
}

/// The verified flow stays green with the cut mapper in the loop: every
/// pass, `cutmap` included, is SAT-checked against its predecessor on
/// every KISS2 benchmark.
#[test]
fn cut_mapper_survives_verify_each_pass_on_all_benchmarks() {
    use synthir_core::format_conv::from_kiss2;
    use synthir_netlist::Library;
    use synthir_rtl::elaborate;
    use synthir_synth::{compile, SynthOptions};

    let lib = Library::vt90();
    let opts = SynthOptions::default()
        .with_cut_mapper()
        .with_verify_each_pass();
    for path in kiss2_benchmarks() {
        let text = std::fs::read_to_string(&path).unwrap();
        let spec = from_kiss2("bench", &text).unwrap();
        let elab = elaborate(&spec.to_table_module(true)).unwrap();
        let r = compile(&elab, &lib, &opts).unwrap();
        assert!(r.netlist.num_gates() > 0);
    }
}

/// The `--mapper` flag is plumbed through the CLI: both values run, the
/// JSON report names the mapper and the `cutmap` pass, and a bogus value
/// is a parse error.
#[test]
fn mapper_flag_reaches_the_flow() {
    let path = &kiss2_benchmarks()[0];
    // Parse with the same FLAGS/OPTIONS tables the `synthir` binary uses,
    // so this test cannot drift from the real argument handling.
    let parse = |raw: &[&str]| Args::parse(raw, fsm::FLAGS, fsm::OPTIONS).unwrap();
    let out = fsm::run(&parse(&[path, "--json", "--mapper", "cuts"])).unwrap();
    assert!(out.contains("\"mapper\": \"cuts\""), "{out}");
    assert!(out.contains("\"cutmap\""), "{out}");
    let out = fsm::run(&parse(&[path, "--json", "--mapper", "rules"])).unwrap();
    assert!(out.contains("\"mapper\": \"rules\""), "{out}");
    assert!(out.contains("\"techmap\""), "{out}");
    assert!(fsm::run(&parse(&[path, "--mapper", "bogus"])).is_err());
}

/// `synthir help <command>` long help covers every flag and option the
/// dispatcher accepts — the FLAGS/OPTIONS tables the binary parses with
/// must each be documented in the corresponding USAGE text.
#[test]
fn long_help_covers_every_flag() {
    let commands: [(&str, &str, &[&str], &[&str]); 4] = [
        ("fsm", fsm::USAGE, fsm::FLAGS, fsm::OPTIONS),
        ("pla", pla::USAGE, pla::FLAGS, pla::OPTIONS),
        ("ucode", ucode::USAGE, ucode::FLAGS, ucode::OPTIONS),
        ("equiv", equiv::USAGE, equiv::FLAGS, equiv::OPTIONS),
    ];
    for (cmd, usage, flags, options) in commands {
        for name in flags.iter().chain(options.iter()) {
            let spelled = if name.len() == 1 {
                format!("-{name}")
            } else {
                format!("--{name}")
            };
            assert!(
                usage.contains(&spelled),
                "`synthir {cmd}` help does not document `{spelled}`"
            );
        }
    }
}
