//! A pseudo-SystemVerilog pretty-printer for RTL modules.
//!
//! Renders a [`Module`] in a readable HDL-like syntax — the form a chip
//! generator would emit for inspection and code review. The output is for
//! humans (and docs); the synthesizable path is [`crate::elaborate()`].

use crate::expr::{BinOp, Expr, ReduceOp};
use crate::module::Module;
use std::fmt::Write as _;

/// Renders the module as pseudo-SystemVerilog text.
pub fn to_pretty(m: &Module) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "module {} (", m.name());
    let mut ports: Vec<String> = Vec::new();
    if m.needs_reset() {
        ports.push("  input  logic         clk".into());
        ports.push("  input  logic         rst".into());
    }
    for (name, w) in m.inputs() {
        ports.push(format!(
            "  input  logic [{:>2}:0] {}",
            w.saturating_sub(1),
            name
        ));
    }
    for (name, w, _) in m.outputs() {
        ports.push(format!(
            "  output logic [{:>2}:0] {}",
            w.saturating_sub(1),
            name
        ));
    }
    let _ = writeln!(s, "{}\n);", ports.join(",\n"));

    for mem in m.memories() {
        let kind = if mem.contents.is_some() {
            "localparam table" // bound
        } else {
            "config memory"
        };
        let _ = writeln!(
            s,
            "  // {kind}: {}[{}] of {} bits",
            mem.name, mem.depth, mem.width
        );
    }
    for (name, w, e) in m.wires() {
        let _ = writeln!(
            s,
            "  logic [{:>2}:0] {name} = {};",
            w.saturating_sub(1),
            fmt_expr(e)
        );
    }
    for r in m.registers() {
        let _ = writeln!(
            s,
            "  always_ff @(posedge clk) {} <= {}; // {}-reset to {:#x}",
            r.name,
            fmt_expr(&r.next),
            r.reset.kind,
            r.reset.value
        );
    }
    for (name, _, e) in m.outputs() {
        let _ = writeln!(s, "  assign {name} = {};", fmt_expr(e));
    }
    if let Some(fsm) = &m.fsm {
        let _ = writeln!(
            s,
            "  // fsm_state_vector {} ({} codes, reset {:#x})",
            fsm.state_reg,
            fsm.codes.len(),
            fsm.reset_code
        );
    }
    for a in &m.annotations {
        let _ = writeln!(s, "  // value_set {} in {}", a.signal, a.values);
    }
    let _ = writeln!(s, "endmodule");
    s
}

fn fmt_expr(e: &Expr) -> String {
    match e {
        Expr::Ref(n) => n.clone(),
        Expr::Const { width, value } => format!("{width}'h{value:x}"),
        Expr::Not(a) => format!("~{}", fmt_atom(a)),
        Expr::Bin { op, a, b } => {
            let sym = match op {
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
            };
            format!("{} {sym} {}", fmt_atom(a), fmt_atom(b))
        }
        Expr::Reduce { op, a } => {
            let sym = match op {
                ReduceOp::Or => "|",
                ReduceOp::And => "&",
                ReduceOp::Xor => "^",
            };
            format!("{sym}{}", fmt_atom(a))
        }
        Expr::Mux { sel, on0, on1 } => {
            format!("{} ? {} : {}", fmt_atom(sel), fmt_atom(on1), fmt_atom(on0))
        }
        Expr::Index { a, bit } => format!("{}[{bit}]", fmt_atom(a)),
        Expr::Slice { a, lo, width } => format!("{}[{lo} +: {width}]", fmt_atom(a)),
        Expr::Concat(parts) => {
            // Verilog concatenation lists MSB first.
            let items: Vec<String> = parts.iter().rev().map(fmt_expr).collect();
            format!("{{{}}}", items.join(", "))
        }
        Expr::Eq { a, b } => format!("{} == {}", fmt_atom(a), fmt_atom(b)),
        Expr::Inc(a) => format!("{} + 1", fmt_atom(a)),
        Expr::ReadMem { mem, addr } => format!("{mem}[{}]", fmt_expr(addr)),
    }
}

fn fmt_atom(e: &Expr) -> String {
    match e {
        Expr::Ref(_) | Expr::Const { .. } | Expr::Index { .. } | Expr::ReadMem { .. } => {
            fmt_expr(e)
        }
        _ => format!("({})", fmt_expr(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{RegReset, Register};
    use synthir_netlist::ResetKind;

    #[test]
    fn renders_readable_hdl() {
        let mut m = Module::new("demo");
        m.add_input("a", 4);
        m.add_input("b", 4);
        m.add_wire("w", 4, Expr::reference("a").and(Expr::reference("b")));
        m.add_register(Register {
            name: "q".into(),
            width: 4,
            next: Expr::reference("w").inc(),
            reset: RegReset {
                kind: ResetKind::Sync,
                value: 3,
            },
        });
        m.add_output("y", 1, Expr::reference("q").reduce_or());
        let text = to_pretty(&m);
        assert!(text.contains("module demo ("));
        assert!(text.contains("input  logic         clk"));
        assert!(text.contains("logic [ 3:0] w = a & b;"));
        assert!(text.contains("always_ff @(posedge clk) q <= w + 1; // sync-reset to 0x3"));
        assert!(text.contains("assign y = |q;"));
        assert!(text.ends_with("endmodule\n"));
    }

    #[test]
    fn renders_metadata_comments() {
        use synthir_logic::ValueSet;
        let mut m = Module::new("anno");
        m.add_input("x", 2);
        m.add_output("y", 2, Expr::reference("x"));
        m.annotate("x", ValueSet::one_hot(2));
        m.set_fsm(crate::module::FsmInfo {
            state_reg: "x".into(),
            codes: vec![1, 2],
            reset_code: 1,
        });
        let text = to_pretty(&m);
        assert!(text.contains("fsm_state_vector x"));
        assert!(text.contains("value_set x"));
    }

    #[test]
    fn concat_lists_msb_first() {
        let mut m = Module::new("c");
        m.add_input("a", 1);
        m.add_input("b", 1);
        m.add_output(
            "y",
            2,
            Expr::concat(vec![Expr::reference("a"), Expr::reference("b")]),
        );
        let text = to_pretty(&m);
        assert!(text.contains("{b, a}"), "{text}");
    }
}
