//! Elaboration: bit-blasting RTL modules into gate-level netlists.

use crate::expr::{BinOp, Expr, ReduceOp};
use crate::module::{Memory, Module};
use crate::RtlError;
use std::collections::HashMap;
use synthir_logic::ValueSet;
use synthir_netlist::{GateKind, NetId, Netlist, ResetKind};

/// A value-set annotation resolved to concrete nets (LSB first).
#[derive(Clone, Debug, PartialEq)]
pub struct NetGroupValues {
    /// The nets of the annotated group, LSB first.
    pub nets: Vec<NetId>,
    /// The values the group may take.
    pub values: ValueSet,
}

/// FSM metadata resolved to concrete nets.
#[derive(Clone, Debug, PartialEq)]
pub struct FsmNets {
    /// State-register output nets, LSB first.
    pub state_nets: Vec<NetId>,
    /// The reachable-by-construction state codes.
    pub codes: Vec<u128>,
    /// The reset state's code.
    pub reset_code: u128,
}

/// The result of elaborating a [`Module`].
#[derive(Clone, Debug)]
pub struct Elaborated {
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Map from signal names (inputs, wires, register outputs) to nets.
    pub signals: HashMap<String, Vec<NetId>>,
    /// FSM metadata carried through from the module, if any.
    pub fsm: Option<FsmNets>,
    /// Value-set annotations resolved to nets.
    pub annotations: Vec<NetGroupValues>,
}

/// Elaborates a module into a netlist.
///
/// # Errors
///
/// Returns an [`RtlError`] for undeclared or duplicate signals, width
/// mismatches, out-of-range indices, combinational wire cycles, or
/// ill-formed memories.
pub fn elaborate(m: &Module) -> Result<Elaborated, RtlError> {
    m.check_names()?;
    let mut ctx = Ctx::new(m)?;
    ctx.resolve_wires()?;
    ctx.elaborate_outputs()?;
    ctx.elaborate_registers()?;
    ctx.elaborate_memories()?;
    ctx.finish()
}

struct Ctx<'m> {
    m: &'m Module,
    nl: Netlist,
    signals: HashMap<String, Vec<NetId>>,
    /// Per programmable memory: storage nets `[word][bit]`.
    mem_storage: HashMap<String, Vec<Vec<NetId>>>,
    rst: Option<NetId>,
}

impl<'m> Ctx<'m> {
    fn new(m: &'m Module) -> Result<Self, RtlError> {
        let mut nl = Netlist::new(m.name());
        let mut signals = HashMap::new();
        for (name, width) in m.inputs() {
            let nets = nl.add_input(name.clone(), *width);
            signals.insert(name.clone(), nets);
        }
        let rst = if m.needs_reset() {
            Some(match signals.get("rst") {
                Some(nets) if nets.len() == 1 => nets[0],
                Some(_) => {
                    return Err(RtlError::WidthMismatch {
                        context: "reset input `rst`".into(),
                        left: signals["rst"].len(),
                        right: 1,
                    })
                }
                None => nl.add_input("rst", 1)[0],
            })
        } else {
            None
        };
        // Pre-create register output nets so next-state logic can reference
        // them.
        for r in m.registers() {
            let nets: Vec<NetId> = (0..r.width)
                .map(|i| nl.add_named_net(format!("{}[{i}]", r.name)))
                .collect();
            signals.insert(r.name.clone(), nets);
        }
        // Pre-create storage for programmable memories.
        let mut mem_storage = HashMap::new();
        for mem in m.memories() {
            validate_memory(mem)?;
            if mem.contents.is_none() {
                let words: Vec<Vec<NetId>> = (0..mem.depth)
                    .map(|w| {
                        (0..mem.width)
                            .map(|b| nl.add_named_net(format!("{}[{w}][{b}]", mem.name)))
                            .collect()
                    })
                    .collect();
                mem_storage.insert(mem.name.clone(), words);
            }
        }
        Ok(Ctx {
            m,
            nl,
            signals,
            mem_storage,
            rst,
        })
    }

    /// Topologically orders and elaborates the named wires.
    fn resolve_wires(&mut self) -> Result<(), RtlError> {
        let wires = self.m.wires();
        let index: HashMap<&str, usize> = wires
            .iter()
            .enumerate()
            .map(|(i, (n, _, _))| (n.as_str(), i))
            .collect();
        // 0 unvisited, 1 in progress, 2 done
        let mut state = vec![0u8; wires.len()];
        let mut order: Vec<usize> = Vec::with_capacity(wires.len());
        fn dfs(
            i: usize,
            wires: &[(String, usize, Expr)],
            index: &HashMap<&str, usize>,
            state: &mut [u8],
            order: &mut Vec<usize>,
        ) -> Result<(), RtlError> {
            match state[i] {
                2 => return Ok(()),
                1 => {
                    return Err(RtlError::CombinationalLoop {
                        name: wires[i].0.clone(),
                    })
                }
                _ => {}
            }
            state[i] = 1;
            for r in wires[i].2.references() {
                if let Some(&j) = index.get(r.as_str()) {
                    dfs(j, wires, index, state, order)?;
                }
            }
            state[i] = 2;
            order.push(i);
            Ok(())
        }
        for i in 0..wires.len() {
            dfs(i, wires, &index, &mut state, &mut order)?;
        }
        for i in order {
            let (name, width, expr) = &wires[i];
            let nets = self.elab_expr(expr)?;
            if nets.len() != *width {
                return Err(RtlError::WidthMismatch {
                    context: format!("wire `{name}`"),
                    left: nets.len(),
                    right: *width,
                });
            }
            self.signals.insert(name.clone(), nets);
        }
        Ok(())
    }

    fn elaborate_outputs(&mut self) -> Result<(), RtlError> {
        for (name, width, expr) in self.m.outputs() {
            let nets = self.elab_expr(expr)?;
            if nets.len() != *width {
                return Err(RtlError::WidthMismatch {
                    context: format!("output `{name}`"),
                    left: nets.len(),
                    right: *width,
                });
            }
            self.nl.add_output(name.clone(), &nets);
        }
        Ok(())
    }

    fn elaborate_registers(&mut self) -> Result<(), RtlError> {
        for r in self.m.registers() {
            let d = self.elab_expr(&r.next)?;
            if d.len() != r.width {
                return Err(RtlError::WidthMismatch {
                    context: format!("register `{}` next-state", r.name),
                    left: d.len(),
                    right: r.width,
                });
            }
            let q = self.signals[&r.name].clone();
            for bit in 0..r.width {
                let init = r.reset.value >> bit & 1 != 0;
                let kind = GateKind::Dff {
                    reset: r.reset.kind,
                    init,
                };
                let inputs: Vec<NetId> = match r.reset.kind {
                    ResetKind::None => vec![d[bit]],
                    _ => vec![d[bit], self.rst.expect("reset input exists")],
                };
                self.nl
                    .attach_gate(kind, &inputs, q[bit])
                    .expect("pre-created q net is undriven");
            }
        }
        Ok(())
    }

    fn elaborate_memories(&mut self) -> Result<(), RtlError> {
        for mem in self.m.memories() {
            if mem.contents.is_some() {
                continue; // bound tables produce logic at their read sites
            }
            let (addr_sig, data_sig, en_sig) =
                mem.write_port.as_ref().ok_or_else(|| RtlError::BadMemory {
                    context: format!("programmable memory `{}` needs a write port", mem.name),
                })?;
            let addr = self.lookup(addr_sig)?;
            let data = self.lookup(data_sig)?;
            let en = self.lookup(en_sig)?;
            let abits = log2_exact(mem.depth).expect("validated");
            if addr.len() != abits {
                return Err(RtlError::WidthMismatch {
                    context: format!("memory `{}` write address", mem.name),
                    left: addr.len(),
                    right: abits,
                });
            }
            if data.len() != mem.width {
                return Err(RtlError::WidthMismatch {
                    context: format!("memory `{}` write data", mem.name),
                    left: data.len(),
                    right: mem.width,
                });
            }
            if en.len() != 1 {
                return Err(RtlError::WidthMismatch {
                    context: format!("memory `{}` write enable", mem.name),
                    left: en.len(),
                    right: 1,
                });
            }
            let storage = self.mem_storage[&mem.name].clone();
            for (w, word_nets) in storage.iter().enumerate() {
                // wen_w = en & (addr == w)
                let eq = self.addr_eq(&addr, w as u128);
                let wen = self.nl.add_gate(GateKind::And2, &[en[0], eq]);
                for (b, &q) in word_nets.iter().enumerate() {
                    let d = self.nl.add_gate(GateKind::Mux2, &[wen, q, data[b]]);
                    self.nl
                        .attach_gate(
                            GateKind::Dff {
                                reset: ResetKind::None,
                                init: false,
                            },
                            &[d],
                            q,
                        )
                        .expect("storage net is undriven");
                }
            }
        }
        Ok(())
    }

    /// AND-tree comparator `addr == value`.
    fn addr_eq(&mut self, addr: &[NetId], value: u128) -> NetId {
        let bits: Vec<NetId> = addr
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                if value >> i & 1 != 0 {
                    a
                } else {
                    self.nl.add_gate(GateKind::Inv, &[a])
                }
            })
            .collect();
        self.and_tree(&bits)
    }

    fn and_tree(&mut self, bits: &[NetId]) -> NetId {
        self.reduce_tree(bits, GateKind::And2)
    }

    fn reduce_tree(&mut self, bits: &[NetId], kind: GateKind) -> NetId {
        match bits.len() {
            0 => match kind {
                GateKind::And2 => self.nl.const1(),
                _ => self.nl.const0(),
            },
            1 => bits[0],
            _ => {
                let mid = bits.len() / 2;
                let lo = self.reduce_tree(&bits[..mid], kind);
                let hi = self.reduce_tree(&bits[mid..], kind);
                self.nl.add_gate(kind, &[lo, hi])
            }
        }
    }

    fn lookup(&self, name: &str) -> Result<Vec<NetId>, RtlError> {
        self.signals
            .get(name)
            .cloned()
            .ok_or_else(|| RtlError::UnknownSignal { name: name.into() })
    }

    fn elab_expr(&mut self, e: &Expr) -> Result<Vec<NetId>, RtlError> {
        match e {
            Expr::Ref(name) => self.lookup(name),
            Expr::Const { width, value } => Ok((0..*width)
                .map(|i| self.nl.constant(value >> i & 1 != 0))
                .collect()),
            Expr::Not(a) => {
                let a = self.elab_expr(a)?;
                Ok(a.iter()
                    .map(|&n| self.nl.add_gate(GateKind::Inv, &[n]))
                    .collect())
            }
            Expr::Bin { op, a, b } => {
                let a = self.elab_expr(a)?;
                let b = self.elab_expr(b)?;
                if a.len() != b.len() {
                    return Err(RtlError::WidthMismatch {
                        context: format!("{op:?}"),
                        left: a.len(),
                        right: b.len(),
                    });
                }
                let kind = match op {
                    BinOp::And => GateKind::And2,
                    BinOp::Or => GateKind::Or2,
                    BinOp::Xor => GateKind::Xor2,
                };
                Ok(a.iter()
                    .zip(&b)
                    .map(|(&x, &y)| self.nl.add_gate(kind, &[x, y]))
                    .collect())
            }
            Expr::Reduce { op, a } => {
                let a = self.elab_expr(a)?;
                let kind = match op {
                    ReduceOp::Or => GateKind::Or2,
                    ReduceOp::And => GateKind::And2,
                    ReduceOp::Xor => GateKind::Xor2,
                };
                Ok(vec![self.reduce_tree(&a, kind)])
            }
            Expr::Mux { sel, on0, on1 } => {
                let sel = self.elab_expr(sel)?;
                if sel.len() != 1 {
                    return Err(RtlError::WidthMismatch {
                        context: "mux select".into(),
                        left: sel.len(),
                        right: 1,
                    });
                }
                let on0 = self.elab_expr(on0)?;
                let on1 = self.elab_expr(on1)?;
                if on0.len() != on1.len() {
                    return Err(RtlError::WidthMismatch {
                        context: "mux arms".into(),
                        left: on0.len(),
                        right: on1.len(),
                    });
                }
                Ok(on0
                    .iter()
                    .zip(&on1)
                    .map(|(&d0, &d1)| self.nl.add_gate(GateKind::Mux2, &[sel[0], d0, d1]))
                    .collect())
            }
            Expr::Index { a, bit } => {
                let a = self.elab_expr(a)?;
                a.get(*bit).map(|&n| vec![n]).ok_or(RtlError::OutOfRange {
                    context: format!("index {bit}"),
                })
            }
            Expr::Slice { a, lo, width } => {
                let a = self.elab_expr(a)?;
                if lo + width > a.len() {
                    return Err(RtlError::OutOfRange {
                        context: format!("slice [{lo} +: {width}] of {}-bit value", a.len()),
                    });
                }
                Ok(a[*lo..lo + width].to_vec())
            }
            Expr::Concat(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend(self.elab_expr(p)?);
                }
                Ok(out)
            }
            Expr::Eq { a, b } => {
                let a = self.elab_expr(a)?;
                let b = self.elab_expr(b)?;
                if a.len() != b.len() {
                    return Err(RtlError::WidthMismatch {
                        context: "eq".into(),
                        left: a.len(),
                        right: b.len(),
                    });
                }
                let bits: Vec<NetId> = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| self.nl.add_gate(GateKind::Xnor2, &[x, y]))
                    .collect();
                Ok(vec![self.and_tree(&bits)])
            }
            Expr::Inc(a) => {
                let a = self.elab_expr(a)?;
                let mut out = Vec::with_capacity(a.len());
                let mut carry: Option<NetId> = None;
                for &bit in &a {
                    match carry {
                        None => {
                            out.push(self.nl.add_gate(GateKind::Inv, &[bit]));
                            carry = Some(bit);
                        }
                        Some(c) => {
                            out.push(self.nl.add_gate(GateKind::Xor2, &[bit, c]));
                            carry = Some(self.nl.add_gate(GateKind::And2, &[bit, c]));
                        }
                    }
                }
                Ok(out)
            }
            Expr::ReadMem { mem, addr } => {
                let mem = self
                    .m
                    .memory(mem)
                    .ok_or_else(|| RtlError::UnknownSignal { name: mem.clone() })?
                    .clone();
                let addr = self.elab_expr(addr)?;
                let abits = log2_exact(mem.depth).ok_or_else(|| RtlError::BadMemory {
                    context: format!(
                        "memory `{}` depth {} is not a power of two",
                        mem.name, mem.depth
                    ),
                })?;
                if addr.len() != abits {
                    return Err(RtlError::WidthMismatch {
                        context: format!("memory `{}` read address", mem.name),
                        left: addr.len(),
                        right: abits,
                    });
                }
                match &mem.contents {
                    Some(words) => {
                        // Bound table: mux tree with constant leaves, one per
                        // output bit. This is the structure the synthesis
                        // engine partially evaluates.
                        let mut out = Vec::with_capacity(mem.width);
                        for b in 0..mem.width {
                            let leaves: Vec<NetId> = (0..mem.depth)
                                .map(|w| self.nl.constant(words[w] >> b & 1 != 0))
                                .collect();
                            out.push(self.mux_tree(&leaves, &addr));
                        }
                        Ok(out)
                    }
                    None => {
                        let storage = self.mem_storage[&mem.name].clone();
                        let mut out = Vec::with_capacity(mem.width);
                        for b in 0..mem.width {
                            let leaves: Vec<NetId> = storage.iter().map(|word| word[b]).collect();
                            out.push(self.mux_tree(&leaves, &addr));
                        }
                        Ok(out)
                    }
                }
            }
        }
    }

    /// Builds a read multiplexer tree: `leaves.len() == 2^addr.len()`,
    /// selecting leaf `addr`.
    fn mux_tree(&mut self, leaves: &[NetId], addr: &[NetId]) -> NetId {
        debug_assert_eq!(leaves.len(), 1 << addr.len());
        if addr.is_empty() {
            return leaves[0];
        }
        let msb = addr[addr.len() - 1];
        let half = leaves.len() / 2;
        let lo = self.mux_tree(&leaves[..half], &addr[..addr.len() - 1]);
        let hi = self.mux_tree(&leaves[half..], &addr[..addr.len() - 1]);
        self.nl.add_gate(GateKind::Mux2, &[msb, lo, hi])
    }

    fn finish(mut self) -> Result<Elaborated, RtlError> {
        let fsm = match &self.m.fsm {
            None => None,
            Some(info) => {
                let nets = self.lookup(&info.state_reg)?;
                Some(FsmNets {
                    state_nets: nets,
                    codes: info.codes.clone(),
                    reset_code: info.reset_code,
                })
            }
        };
        let mut annotations = Vec::new();
        for a in &self.m.annotations {
            let nets = self.lookup(&a.signal)?;
            if nets.len() != a.values.width() as usize {
                return Err(RtlError::WidthMismatch {
                    context: format!("annotation on `{}`", a.signal),
                    left: nets.len(),
                    right: a.values.width() as usize,
                });
            }
            annotations.push(NetGroupValues {
                nets,
                values: a.values.clone(),
            });
        }
        self.nl.sweep();
        self.nl
            .validate()
            .expect("elaboration produces valid netlists");
        Ok(Elaborated {
            netlist: self.nl,
            signals: self.signals,
            fsm,
            annotations,
        })
    }
}

fn validate_memory(mem: &Memory) -> Result<(), RtlError> {
    if log2_exact(mem.depth).is_none() {
        return Err(RtlError::BadMemory {
            context: format!(
                "memory `{}` depth {} is not a power of two",
                mem.name, mem.depth
            ),
        });
    }
    if let Some(words) = &mem.contents {
        if words.len() != mem.depth {
            return Err(RtlError::BadMemory {
                context: format!(
                    "memory `{}` has {} contents words for depth {}",
                    mem.name,
                    words.len(),
                    mem.depth
                ),
            });
        }
        if mem.width < 128 {
            for (i, w) in words.iter().enumerate() {
                if *w >= 1u128 << mem.width {
                    return Err(RtlError::BadMemory {
                        context: format!("memory `{}` word {i} exceeds width", mem.name),
                    });
                }
            }
        }
    }
    Ok(())
}

fn log2_exact(n: usize) -> Option<usize> {
    if n.is_power_of_two() {
        Some(n.trailing_zeros() as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{RegReset, Register};

    #[test]
    fn combinational_expressions() {
        let mut m = Module::new("comb");
        m.add_input("a", 4);
        m.add_input("b", 4);
        m.add_wire("w", 4, Expr::reference("a").and(Expr::reference("b")));
        m.add_output("y", 1, Expr::reference("w").reduce_or());
        m.add_output("p", 1, Expr::reference("a").reduce_xor());
        m.add_output("e", 1, Expr::reference("a").eq(Expr::reference("b")));
        let e = elaborate(&m).unwrap();
        assert!(e.netlist.num_gates() > 0);
        assert_eq!(e.netlist.outputs().len(), 3);
        assert_eq!(e.signals["w"].len(), 4);
    }

    #[test]
    fn width_mismatch_detected() {
        let mut m = Module::new("bad");
        m.add_input("a", 4);
        m.add_input("b", 2);
        m.add_output("y", 4, Expr::reference("a").and(Expr::reference("b")));
        assert!(matches!(elaborate(&m), Err(RtlError::WidthMismatch { .. })));
    }

    #[test]
    fn unknown_signal_detected() {
        let mut m = Module::new("bad");
        m.add_output("y", 1, Expr::reference("ghost"));
        assert!(matches!(elaborate(&m), Err(RtlError::UnknownSignal { .. })));
    }

    #[test]
    fn wire_cycle_detected() {
        let mut m = Module::new("loop");
        m.add_wire("x", 1, Expr::reference("y"));
        m.add_wire("y", 1, Expr::reference("x"));
        m.add_output("o", 1, Expr::reference("x"));
        assert!(matches!(
            elaborate(&m),
            Err(RtlError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn registers_get_reset_input() {
        let mut m = Module::new("reg");
        m.add_input("d", 2);
        m.add_register(Register {
            name: "q".into(),
            width: 2,
            next: Expr::reference("d"),
            reset: RegReset {
                kind: ResetKind::Sync,
                value: 0b10,
            },
        });
        m.add_output("o", 2, Expr::reference("q"));
        let e = elaborate(&m).unwrap();
        assert!(e.netlist.input("rst").is_ok());
        assert_eq!(e.netlist.flop_count(), 2);
        // The reset value is encoded in the flop inits.
        let inits: Vec<bool> = e.signals["q"]
            .iter()
            .map(|&q| {
                let g = e.netlist.driver(q).unwrap();
                match e.netlist.gate(g).kind {
                    GateKind::Dff { init, .. } => init,
                    _ => panic!("not a flop"),
                }
            })
            .collect();
        assert_eq!(inits, vec![false, true]);
    }

    #[test]
    fn bound_rom_elaborates_to_logic_only() {
        let mut m = Module::new("rom");
        m.add_input("addr", 2);
        m.add_memory(Memory {
            name: "t".into(),
            width: 3,
            depth: 4,
            contents: Some(vec![0b000, 0b101, 0b011, 0b111]),
            write_port: None,
        });
        m.add_output("data", 3, Expr::read_mem("t", Expr::reference("addr")));
        let e = elaborate(&m).unwrap();
        assert_eq!(e.netlist.flop_count(), 0);
        assert!(e.netlist.num_gates() > 0);
    }

    #[test]
    fn programmable_memory_elaborates_to_flops() {
        let mut m = Module::new("cfg");
        m.add_input("waddr", 2);
        m.add_input("wdata", 3);
        m.add_input("wen", 1);
        m.add_input("raddr", 2);
        m.add_memory(Memory {
            name: "t".into(),
            width: 3,
            depth: 4,
            contents: None,
            write_port: Some(("waddr".into(), "wdata".into(), "wen".into())),
        });
        m.add_output("data", 3, Expr::read_mem("t", Expr::reference("raddr")));
        let e = elaborate(&m).unwrap();
        assert_eq!(e.netlist.flop_count(), 12); // 4 words x 3 bits
    }

    #[test]
    fn bad_memory_depth_rejected() {
        let mut m = Module::new("bad");
        m.add_input("addr", 2);
        m.add_memory(Memory {
            name: "t".into(),
            width: 1,
            depth: 3,
            contents: Some(vec![0, 1, 0]),
            write_port: None,
        });
        m.add_output("d", 1, Expr::read_mem("t", Expr::reference("addr")));
        assert!(matches!(elaborate(&m), Err(RtlError::BadMemory { .. })));
    }

    #[test]
    fn fsm_and_annotations_resolved() {
        use synthir_logic::ValueSet;
        let mut m = Module::new("fsm");
        m.add_input("go", 1);
        m.add_register(Register {
            name: "state".into(),
            width: 2,
            next: Expr::reference("go")
                .mux(Expr::reference("state"), Expr::reference("state").inc()),
            reset: RegReset {
                kind: ResetKind::Sync,
                value: 0,
            },
        });
        m.add_output("s", 2, Expr::reference("state"));
        m.set_fsm(crate::module::FsmInfo {
            state_reg: "state".into(),
            codes: vec![0, 1, 2],
            reset_code: 0,
        });
        m.annotate("state", ValueSet::from_values(2, [0, 1, 2]));
        let e = elaborate(&m).unwrap();
        let fsm = e.fsm.unwrap();
        assert_eq!(fsm.state_nets.len(), 2);
        assert_eq!(fsm.codes, vec![0, 1, 2]);
        assert_eq!(e.annotations.len(), 1);
        assert_eq!(e.annotations[0].nets, e.signals["state"]);
    }

    #[test]
    fn inc_is_correct_width() {
        let mut m = Module::new("inc");
        m.add_input("a", 4);
        m.add_output("y", 4, Expr::reference("a").inc());
        let e = elaborate(&m).unwrap();
        assert_eq!(e.netlist.output("y").unwrap().nets.len(), 4);
    }
}
