//! # synthir-rtl
//!
//! A small RTL intermediate representation and its elaborator.
//!
//! The paper's experiments compare *coding styles* for the same logical
//! function: sum-of-products assignments, case-statement FSMs, and
//! table-based descriptions backed by (possibly programmable) memories.
//! This crate provides exactly those building blocks:
//!
//! * [`Expr`] — width-checked combinational expressions over named signals,
//! * [`Module`] — a synthesizable module with wires, registers and memories,
//! * [`elaborate()`] — bit-blasting elaboration into a
//!   [`synthir_netlist::Netlist`],
//! * [`styles`] — canned generators for the paper's coding styles.
//!
//! A [`Module`]'s memory with bound (`Some`) contents elaborates into pure
//! combinational lookup logic — the input that the synthesis engine's
//! partial evaluation collapses. A memory with `None` contents elaborates
//! into a flop array with a write port: the "Full" flexible configuration
//! memory of the paper, which costs area but can be reprogrammed at runtime.
//!
//! ## Example
//!
//! ```
//! use synthir_rtl::{Expr, Module};
//!
//! let mut m = Module::new("xor_gate");
//! m.add_input("a", 1);
//! m.add_input("b", 1);
//! m.add_output("y", 1, Expr::reference("a").xor(Expr::reference("b")));
//! let elab = synthir_rtl::elaborate(&m).unwrap();
//! assert_eq!(elab.netlist.num_gates(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elaborate;
pub mod expr;
pub mod module;
pub mod pretty;
pub mod styles;

pub use elaborate::{elaborate, Elaborated};
pub use expr::{BinOp, Expr, ReduceOp};
pub use module::{FsmInfo, Memory, Module, RegReset, Register, SignalAnnotation};
pub use synthir_netlist::ResetKind;

/// Errors produced while building or elaborating RTL.
#[derive(Debug, Clone, PartialEq)]
pub enum RtlError {
    /// A referenced signal is not declared in the module.
    UnknownSignal {
        /// The missing signal name.
        name: String,
    },
    /// Two signals of the same name were declared.
    DuplicateSignal {
        /// The clashing name.
        name: String,
    },
    /// An expression's operand widths are inconsistent.
    WidthMismatch {
        /// Description of the offending expression.
        context: String,
        /// Left/actual width.
        left: usize,
        /// Right/expected width.
        right: usize,
    },
    /// A bit index or slice exceeds the operand width.
    OutOfRange {
        /// Description of the offending expression.
        context: String,
    },
    /// Combinational wires form a dependency cycle.
    CombinationalLoop {
        /// A signal on the cycle.
        name: String,
    },
    /// A memory was declared or used inconsistently.
    BadMemory {
        /// Description of the problem.
        context: String,
    },
}

impl std::fmt::Display for RtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtlError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            RtlError::DuplicateSignal { name } => write!(f, "duplicate signal `{name}`"),
            RtlError::WidthMismatch {
                context,
                left,
                right,
            } => write!(f, "width mismatch in {context}: {left} vs {right}"),
            RtlError::OutOfRange { context } => write!(f, "index out of range in {context}"),
            RtlError::CombinationalLoop { name } => {
                write!(f, "combinational loop through `{name}`")
            }
            RtlError::BadMemory { context } => write!(f, "bad memory: {context}"),
        }
    }
}

impl std::error::Error for RtlError {}
