//! Width-checked combinational expressions.

/// Bitwise binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

/// Reduction operators (n-bit operand, 1-bit result).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// OR of all bits.
    Or,
    /// AND of all bits.
    And,
    /// XOR (parity) of all bits.
    Xor,
}

/// A combinational expression tree over named module signals.
///
/// Expressions are untyped until elaborated inside a [`crate::Module`],
/// where every node's width is computed and checked. The natural bit order
/// throughout is LSB-first.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Reference to a named signal (input port, wire, or register output).
    Ref(String),
    /// A literal of explicit width.
    Const {
        /// Bit width (1..=128).
        width: usize,
        /// The literal value (must fit in `width` bits).
        value: u128,
    },
    /// Bitwise NOT.
    Not(Box<Expr>),
    /// Bitwise binary operation of equal-width operands.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Box<Expr>,
        /// Right operand.
        b: Box<Expr>,
    },
    /// Reduction to a single bit.
    Reduce {
        /// Operator.
        op: ReduceOp,
        /// Operand.
        a: Box<Expr>,
    },
    /// 2:1 multiplexer on equal-width arms; `sel` must be 1 bit wide.
    Mux {
        /// Select bit.
        sel: Box<Expr>,
        /// Value when `sel == 0`.
        on0: Box<Expr>,
        /// Value when `sel == 1`.
        on1: Box<Expr>,
    },
    /// A single bit of an operand.
    Index {
        /// Operand.
        a: Box<Expr>,
        /// Bit position (LSB = 0).
        bit: usize,
    },
    /// A contiguous bit slice of an operand.
    Slice {
        /// Operand.
        a: Box<Expr>,
        /// Low bit of the slice.
        lo: usize,
        /// Slice width.
        width: usize,
    },
    /// Concatenation; the first element occupies the low bits.
    Concat(Vec<Expr>),
    /// Equality comparison (1-bit result) of equal-width operands.
    Eq {
        /// Left operand.
        a: Box<Expr>,
        /// Right operand.
        b: Box<Expr>,
    },
    /// Wrap-around increment (`a + 1 mod 2^width`).
    Inc(Box<Expr>),
    /// Asynchronous read of a module memory at the given address.
    ReadMem {
        /// Memory name.
        mem: String,
        /// Address expression.
        addr: Box<Expr>,
    },
}

impl Expr {
    /// Reference to a named signal.
    pub fn reference(name: impl Into<String>) -> Expr {
        Expr::Ref(name.into())
    }

    /// A constant of the given width.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `width` bits or `width` is 0 or
    /// exceeds 128.
    pub fn constant(width: usize, value: u128) -> Expr {
        assert!((1..=128).contains(&width), "bad constant width {width}");
        if width < 128 {
            assert!(
                value < (1u128 << width),
                "constant {value:#x} does not fit in {width} bits"
            );
        }
        Expr::Const { width, value }
    }

    /// A 1-bit constant.
    pub fn bit(value: bool) -> Expr {
        Expr::constant(1, u128::from(value))
    }

    /// Bitwise NOT.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Bitwise AND.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Bin {
            op: BinOp::And,
            a: Box::new(self),
            b: Box::new(other),
        }
    }

    /// Bitwise OR.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Bin {
            op: BinOp::Or,
            a: Box::new(self),
            b: Box::new(other),
        }
    }

    /// Bitwise XOR.
    pub fn xor(self, other: Expr) -> Expr {
        Expr::Bin {
            op: BinOp::Xor,
            a: Box::new(self),
            b: Box::new(other),
        }
    }

    /// OR-reduction to one bit.
    pub fn reduce_or(self) -> Expr {
        Expr::Reduce {
            op: ReduceOp::Or,
            a: Box::new(self),
        }
    }

    /// AND-reduction to one bit.
    pub fn reduce_and(self) -> Expr {
        Expr::Reduce {
            op: ReduceOp::And,
            a: Box::new(self),
        }
    }

    /// XOR-reduction (parity) to one bit.
    pub fn reduce_xor(self) -> Expr {
        Expr::Reduce {
            op: ReduceOp::Xor,
            a: Box::new(self),
        }
    }

    /// 2:1 mux with `self` as the select bit.
    pub fn mux(self, on0: Expr, on1: Expr) -> Expr {
        Expr::Mux {
            sel: Box::new(self),
            on0: Box::new(on0),
            on1: Box::new(on1),
        }
    }

    /// Single-bit select.
    pub fn index(self, bit: usize) -> Expr {
        Expr::Index {
            a: Box::new(self),
            bit,
        }
    }

    /// Contiguous slice `[lo .. lo+width)`.
    pub fn slice(self, lo: usize, width: usize) -> Expr {
        Expr::Slice {
            a: Box::new(self),
            lo,
            width,
        }
    }

    /// Concatenation (first element = low bits).
    pub fn concat(parts: Vec<Expr>) -> Expr {
        Expr::Concat(parts)
    }

    /// Equality comparison (1-bit result).
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Eq {
            a: Box::new(self),
            b: Box::new(other),
        }
    }

    /// Equality against a constant of width `width`.
    pub fn eq_const(self, width: usize, value: u128) -> Expr {
        self.eq(Expr::constant(width, value))
    }

    /// Wrap-around increment.
    pub fn inc(self) -> Expr {
        Expr::Inc(Box::new(self))
    }

    /// Asynchronous memory read.
    pub fn read_mem(mem: impl Into<String>, addr: Expr) -> Expr {
        Expr::ReadMem {
            mem: mem.into(),
            addr: Box::new(addr),
        }
    }

    /// Logical shift left by a constant, keeping the operand width
    /// (`width` must be the operand's width).
    ///
    /// # Panics
    ///
    /// Panics if `k > width`.
    pub fn shl_const(self, width: usize, k: usize) -> Expr {
        assert!(k <= width, "shift {k} exceeds width {width}");
        if k == 0 {
            return self;
        }
        if k == width {
            return Expr::constant(width, 0);
        }
        Expr::concat(vec![Expr::constant(k, 0), self.slice(0, width - k)])
    }

    /// Logical shift right by a constant, keeping the operand width.
    ///
    /// # Panics
    ///
    /// Panics if `k > width`.
    pub fn shr_const(self, width: usize, k: usize) -> Expr {
        assert!(k <= width, "shift {k} exceeds width {width}");
        if k == 0 {
            return self;
        }
        if k == width {
            return Expr::constant(width, 0);
        }
        Expr::concat(vec![self.slice(k, width - k), Expr::constant(k, 0)])
    }

    /// All signal names referenced by the expression (including memories).
    pub fn references(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_refs(&self, out: &mut Vec<String>) {
        match self {
            Expr::Ref(n) => out.push(n.clone()),
            Expr::Const { .. } => {}
            Expr::Not(a) | Expr::Reduce { a, .. } | Expr::Inc(a) => a.collect_refs(out),
            Expr::Bin { a, b, .. } | Expr::Eq { a, b } => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Expr::Mux { sel, on0, on1 } => {
                sel.collect_refs(out);
                on0.collect_refs(out);
                on1.collect_refs(out);
            }
            Expr::Index { a, .. } | Expr::Slice { a, .. } => a.collect_refs(out),
            Expr::Concat(parts) => {
                for p in parts {
                    p.collect_refs(out);
                }
            }
            Expr::ReadMem { mem, addr } => {
                out.push(mem.clone());
                addr.collect_refs(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = Expr::reference("a")
            .and(Expr::reference("b"))
            .or(Expr::reference("c").not());
        let refs = e.references();
        assert_eq!(refs, vec!["a", "b", "c"]);
    }

    #[test]
    fn shifts_build_concats() {
        let e = Expr::reference("x").shl_const(4, 1);
        match &e {
            Expr::Concat(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Expr::Const { width: 1, value: 0 }));
            }
            other => panic!("expected concat, got {other:?}"),
        }
        // Full shift becomes a constant.
        assert!(matches!(
            Expr::reference("x").shl_const(4, 4),
            Expr::Const { width: 4, value: 0 }
        ));
        // Zero shift is the identity.
        assert!(matches!(Expr::reference("x").shr_const(4, 0), Expr::Ref(_)));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_constant_panics() {
        Expr::constant(3, 8);
    }

    #[test]
    fn references_include_memories() {
        let e = Expr::read_mem("rom", Expr::reference("addr"));
        assert_eq!(e.references(), vec!["addr", "rom"]);
    }
}
