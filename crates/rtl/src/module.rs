//! Synthesizable RTL modules.

use crate::expr::Expr;
use crate::RtlError;
use synthir_logic::ValueSet;
use synthir_netlist::ResetKind;

/// Reset specification of a [`Register`].
#[derive(Clone, Debug, PartialEq)]
pub struct RegReset {
    /// Reset flavour.
    pub kind: ResetKind,
    /// The value loaded on reset (also the assumed power-up value).
    pub value: u128,
}

/// A clocked register (one per named state-holding signal).
#[derive(Clone, Debug, PartialEq)]
pub struct Register {
    /// Signal name of the register output.
    pub name: String,
    /// Width in bits.
    pub width: usize,
    /// Next-state expression, sampled every clock.
    pub next: Expr,
    /// Reset behaviour.
    pub reset: RegReset,
}

/// A word-addressed memory.
///
/// A memory with `contents: Some(..)` is a bound table: its read ports
/// elaborate into combinational lookup logic that the synthesis engine can
/// partially evaluate. A memory with `contents: None` is a *programmable
/// configuration memory*: it elaborates into a flop array plus write-port
/// decoding, and its area is what the paper's "Full" flexible designs pay.
#[derive(Clone, Debug, PartialEq)]
pub struct Memory {
    /// Memory name (referenced by [`Expr::ReadMem`]).
    pub name: String,
    /// Word width in bits.
    pub width: usize,
    /// Number of words.
    pub depth: usize,
    /// Bound contents (LSB-first words), or `None` for programmable storage.
    pub contents: Option<Vec<u128>>,
    /// For programmable memories: names of the write-port signals
    /// `(addr, data, enable)`, which must be declared module inputs.
    pub write_port: Option<(String, String, String)>,
}

/// FSM metadata attached by the case-statement coding style (or by the
/// `set_fsm_state_vector` manual annotation of the paper's second Fig. 6
/// experiment). The synthesis engine can only re-encode and prune a state
/// register when this is present.
#[derive(Clone, Debug, PartialEq)]
pub struct FsmInfo {
    /// Name of the state register.
    pub state_reg: String,
    /// The state codes in use (others are unreachable by construction).
    pub codes: Vec<u128>,
    /// Code of the reset state.
    pub reset_code: u128,
}

/// A known-value-set annotation on a register output, the vehicle for the
/// paper's *state propagation across flop boundaries* experiments.
#[derive(Clone, Debug, PartialEq)]
pub struct SignalAnnotation {
    /// The annotated register (or input) name.
    pub signal: String,
    /// The values the signal is asserted to take.
    pub values: ValueSet,
}

/// A synthesizable RTL module.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Clone, Debug, Default)]
pub struct Module {
    name: String,
    inputs: Vec<(String, usize)>,
    outputs: Vec<(String, usize, Expr)>,
    wires: Vec<(String, usize, Expr)>,
    regs: Vec<Register>,
    mems: Vec<Memory>,
    /// FSM metadata, if the module was written in (or annotated to) the
    /// FSM-aware style.
    pub fsm: Option<FsmInfo>,
    /// Value-set annotations.
    pub annotations: Vec<SignalAnnotation>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the module.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Declares an input port.
    pub fn add_input(&mut self, name: impl Into<String>, width: usize) -> &mut Self {
        self.inputs.push((name.into(), width));
        self
    }

    /// Declares an output port driven by an expression.
    pub fn add_output(&mut self, name: impl Into<String>, width: usize, expr: Expr) -> &mut Self {
        self.outputs.push((name.into(), width, expr));
        self
    }

    /// Declares a named combinational wire.
    pub fn add_wire(&mut self, name: impl Into<String>, width: usize, expr: Expr) -> &mut Self {
        self.wires.push((name.into(), width, expr));
        self
    }

    /// Declares a register.
    pub fn add_register(&mut self, reg: Register) -> &mut Self {
        self.regs.push(reg);
        self
    }

    /// Declares a memory.
    pub fn add_memory(&mut self, mem: Memory) -> &mut Self {
        self.mems.push(mem);
        self
    }

    /// Attaches FSM metadata (the `set_fsm_state_vector` annotation).
    pub fn set_fsm(&mut self, fsm: FsmInfo) -> &mut Self {
        self.fsm = Some(fsm);
        self
    }

    /// Adds a value-set annotation to a register output.
    pub fn annotate(&mut self, signal: impl Into<String>, values: ValueSet) -> &mut Self {
        self.annotations.push(SignalAnnotation {
            signal: signal.into(),
            values,
        });
        self
    }

    /// Input ports.
    pub fn inputs(&self) -> &[(String, usize)] {
        &self.inputs
    }

    /// Output ports and their driving expressions.
    pub fn outputs(&self) -> &[(String, usize, Expr)] {
        &self.outputs
    }

    /// Named wires.
    pub fn wires(&self) -> &[(String, usize, Expr)] {
        &self.wires
    }

    /// Registers.
    pub fn registers(&self) -> &[Register] {
        &self.regs
    }

    /// Memories.
    pub fn memories(&self) -> &[Memory] {
        &self.mems
    }

    /// Looks up a memory by name.
    pub fn memory(&self, name: &str) -> Option<&Memory> {
        self.mems.iter().find(|m| m.name == name)
    }

    /// The declared width of a named signal (input, wire, or register).
    pub fn signal_width(&self, name: &str) -> Option<usize> {
        self.inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| *w)
            .or_else(|| {
                self.wires
                    .iter()
                    .find(|(n, _, _)| n == name)
                    .map(|(_, w, _)| *w)
            })
            .or_else(|| self.regs.iter().find(|r| r.name == name).map(|r| r.width))
    }

    /// Checks name uniqueness across inputs, wires, registers and memories.
    ///
    /// # Errors
    ///
    /// Returns [`RtlError::DuplicateSignal`] on the first clash.
    pub fn check_names(&self) -> Result<(), RtlError> {
        let mut seen = std::collections::HashSet::new();
        let names = self
            .inputs
            .iter()
            .map(|(n, _)| n.clone())
            .chain(self.wires.iter().map(|(n, _, _)| n.clone()))
            .chain(self.regs.iter().map(|r| r.name.clone()))
            .chain(self.mems.iter().map(|m| m.name.clone()));
        for n in names {
            if !seen.insert(n.clone()) {
                return Err(RtlError::DuplicateSignal { name: n });
            }
        }
        Ok(())
    }

    /// Whether any register needs a reset input.
    pub fn needs_reset(&self) -> bool {
        self.regs.iter().any(|r| r.reset.kind != ResetKind::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declarations_and_lookup() {
        let mut m = Module::new("m");
        m.add_input("a", 4);
        m.add_wire("w", 2, Expr::reference("a").slice(0, 2));
        m.add_register(Register {
            name: "r".into(),
            width: 3,
            next: Expr::constant(3, 1),
            reset: RegReset {
                kind: ResetKind::Sync,
                value: 0,
            },
        });
        assert_eq!(m.signal_width("a"), Some(4));
        assert_eq!(m.signal_width("w"), Some(2));
        assert_eq!(m.signal_width("r"), Some(3));
        assert_eq!(m.signal_width("zzz"), None);
        assert!(m.needs_reset());
        m.check_names().unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut m = Module::new("m");
        m.add_input("a", 1);
        m.add_wire("a", 1, Expr::bit(false));
        assert!(matches!(
            m.check_names(),
            Err(RtlError::DuplicateSignal { .. })
        ));
    }

    #[test]
    fn annotations_accumulate() {
        let mut m = Module::new("m");
        m.annotate("y", ValueSet::one_hot(4));
        assert_eq!(m.annotations.len(), 1);
        assert!(m.annotations[0].values.is_one_hot());
    }
}
