//! The paper's coding styles for combinational logic.
//!
//! Section III-A of the paper compares "direct" implementations, written as
//! sum-of-products assignments for each output bit, against table-based
//! implementations that store the truth table in an (asynchronously
//! readable) memory addressed by the function inputs. These generators
//! produce both styles from the same specification, so the experiment
//! harness can synthesize matched pairs.

use crate::expr::Expr;
use crate::module::{Memory, Module};
use synthir_logic::{Cover, Cube};

/// The input bus name used by all style generators.
pub const INPUT_BUS: &str = "x";
/// The output bus name used by all style generators.
pub const OUTPUT_BUS: &str = "y";

/// Builds the direct, sum-of-products coding style: one SOP assignment per
/// output bit (`assign y[i] = ... | ... | ...`).
///
/// # Panics
///
/// Panics if any cover's variable count differs from `num_inputs`.
pub fn sop_module(name: impl Into<String>, num_inputs: usize, covers: &[Cover]) -> Module {
    let mut m = Module::new(name);
    m.add_input(INPUT_BUS, num_inputs);
    let mut bits = Vec::with_capacity(covers.len());
    for c in covers {
        assert_eq!(c.nvars(), num_inputs, "cover arity mismatch");
        bits.push(cover_expr(c));
    }
    m.add_output(OUTPUT_BUS, covers.len(), Expr::concat(bits));
    m
}

/// Builds the table-based coding style with *bound* contents: the truth
/// table is stored in a read-only memory addressed by the inputs. After
/// partial evaluation this should match the SOP style (Fig. 5).
///
/// `contents[m]` holds all output bits for input minterm `m` (bit `i` of the
/// word is output `i`).
///
/// # Panics
///
/// Panics if `contents.len() != 2^num_inputs`.
pub fn table_module(
    name: impl Into<String>,
    num_inputs: usize,
    num_outputs: usize,
    contents: &[u128],
) -> Module {
    assert_eq!(contents.len(), 1 << num_inputs, "table depth mismatch");
    let mut m = Module::new(name);
    m.add_input(INPUT_BUS, num_inputs);
    m.add_memory(Memory {
        name: "table".into(),
        width: num_outputs,
        depth: 1 << num_inputs,
        contents: Some(contents.to_vec()),
        write_port: None,
    });
    m.add_output(
        OUTPUT_BUS,
        num_outputs,
        Expr::read_mem("table", Expr::reference(INPUT_BUS)),
    );
    m
}

/// Builds the fully flexible (runtime-programmable) table style: the truth
/// table lives in a writable configuration memory. This is the "Full"
/// flavour whose area the paper's partial evaluation eliminates.
pub fn table_module_programmable(
    name: impl Into<String>,
    num_inputs: usize,
    num_outputs: usize,
) -> Module {
    let mut m = Module::new(name);
    m.add_input(INPUT_BUS, num_inputs);
    m.add_input("cfg_addr", num_inputs);
    m.add_input("cfg_data", num_outputs);
    m.add_input("cfg_wen", 1);
    m.add_memory(Memory {
        name: "table".into(),
        width: num_outputs,
        depth: 1 << num_inputs,
        contents: None,
        write_port: Some(("cfg_addr".into(), "cfg_data".into(), "cfg_wen".into())),
    });
    m.add_output(
        OUTPUT_BUS,
        num_outputs,
        Expr::read_mem("table", Expr::reference(INPUT_BUS)),
    );
    m
}

/// Converts a cover into a sum-of-products [`Expr`] over the input bus.
pub fn cover_expr(cover: &Cover) -> Expr {
    if cover.is_empty() {
        return Expr::bit(false);
    }
    let mut terms: Vec<Expr> = cover.cubes().iter().map(cube_expr).collect();
    let mut acc = terms.remove(0);
    for t in terms {
        acc = acc.or(t);
    }
    acc
}

/// Converts a cube into a product-term [`Expr`] over the input bus.
pub fn cube_expr(cube: &Cube) -> Expr {
    use synthir_logic::cube::Literal;
    let mut lits: Vec<Expr> = Vec::new();
    for v in 0..cube.nvars() {
        match cube.literal(v) {
            Literal::DontCare => {}
            Literal::Positive => lits.push(Expr::reference(INPUT_BUS).index(v)),
            Literal::Negative => lits.push(Expr::reference(INPUT_BUS).index(v).not()),
        }
    }
    if lits.is_empty() {
        return Expr::bit(true);
    }
    let mut acc = lits.remove(0);
    for l in lits {
        acc = acc.and(l);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate;
    use synthir_logic::TruthTable;

    fn table_from_tts(tts: &[TruthTable]) -> Vec<u128> {
        let n = tts[0].inputs();
        (0..1usize << n)
            .map(|m| {
                tts.iter()
                    .enumerate()
                    .fold(0u128, |acc, (i, tt)| acc | (u128::from(tt.eval(m)) << i))
            })
            .collect()
    }

    #[test]
    fn sop_and_table_styles_elaborate() {
        let tt0 = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let tt1 = TruthTable::from_fn(3, |m| m % 2 == 0);
        let covers = vec![Cover::from_truth_table(&tt0), Cover::from_truth_table(&tt1)];
        let sop = sop_module("sop", 3, &covers);
        let e1 = elaborate(&sop).unwrap();
        assert_eq!(e1.netlist.flop_count(), 0);

        let words = table_from_tts(&[tt0, tt1]);
        let tab = table_module("tab", 3, 2, &words);
        let e2 = elaborate(&tab).unwrap();
        assert_eq!(e2.netlist.flop_count(), 0);
        assert!(e2.netlist.num_gates() > 0);
    }

    #[test]
    fn programmable_table_has_flops() {
        let m = table_module_programmable("flex", 3, 2);
        let e = elaborate(&m).unwrap();
        assert_eq!(e.netlist.flop_count(), 8 * 2);
    }

    #[test]
    fn cover_expr_handles_edges() {
        assert!(matches!(
            cover_expr(&Cover::empty(3)),
            Expr::Const { value: 0, .. }
        ));
        assert!(matches!(
            cover_expr(&Cover::tautology_cover(3)),
            Expr::Const { value: 1, .. }
        ));
    }
}
