//! Integration tests for the supporting toolchain: assembler → sequencer →
//! simulation → waveforms, FSM minimization → synthesis, and PLA round
//! trips through the minimizer.

use std::collections::HashMap;
use synthir::core::asm::{assemble, disassemble};
use synthir::core::microcode::{Field, MicrocodeFormat};
use synthir::core::minimize::minimize_fsm;
use synthir::core::pe::compile_module;
use synthir::core::sequencer::{generate, SequencerOptions};
use synthir::netlist::Library;
use synthir::rtl::elaborate;
use synthir::synth::SynthOptions;

#[test]
fn assembler_to_waveform_pipeline() {
    let fmt = MicrocodeFormat::new(vec![Field::one_hot("lane", 2), Field::binary("tick", 1)]);
    let src = "
start: set lane=0b01 | jnz go, two
       jmp start
two:   set lane=0b10, tick=1 | jmp start
";
    let program = assemble("pipe", fmt, &["go"], src).unwrap();
    let module = generate(&program, SequencerOptions::default()).unwrap();
    let elab = elaborate(&module).unwrap();
    let vcd = synthir::sim::vcd::record_run(&elab.netlist, 6, |c| {
        let mut m = HashMap::new();
        m.insert("cond".to_string(), u128::from(c == 1));
        m
    })
    .unwrap();
    assert!(vcd.contains("$var"));
    assert!(vcd.contains("lane"));
    // Round-trip through the disassembler preserves the program.
    let p2 = assemble(
        "pipe2",
        program.format().clone(),
        &["go"],
        &disassemble(&program, &["go"]),
    )
    .unwrap();
    assert_eq!(program.instrs().len(), p2.instrs().len());
}

#[test]
fn minimized_fsm_synthesizes_smaller_or_equal() {
    // Build a machine with duplicated fragments, as a naive generator would.
    use synthir::core::fsm::FsmSpec;
    use synthir::logic::Cube;
    let mut f = FsmSpec::new("dup", 1, 2);
    let idle = f.add_state("idle");
    // Two copies of the same two-step burst.
    let mut burst_heads = Vec::new();
    for copy in 0..2 {
        let s1 = f.add_state(format!("b{copy}_1"));
        let s2 = f.add_state(format!("b{copy}_2"));
        f.set_default(s1, s2, 0b01);
        f.set_default(s2, idle, 0b10);
        burst_heads.push(s1);
    }
    let go = Cube::new(1, 1, 1);
    f.add_rule(idle, go, burst_heads[0], 0b00);
    f.set_default(idle, burst_heads[1], 0b00);
    // The two bursts are identical -> minimization merges them.
    let min = minimize_fsm(&f);
    assert!(min.spec.state_count() < f.state_count());

    let lib = Library::vt90();
    let opts = SynthOptions::default();
    let full = compile_module(&f.to_table_module(true), &lib, &opts).unwrap();
    let reduced = compile_module(&min.spec.to_table_module(true), &lib, &opts).unwrap();
    assert!(reduced.area.total() <= full.area.total() * 1.001);
}

#[test]
fn pla_round_trip_through_minimizer() {
    use synthir::logic::pla::{from_pla, to_pla};
    use synthir::logic::{espresso, Cover, TruthTable};
    let tts: Vec<TruthTable> = (0..2)
        .map(|i| TruthTable::from_fn(5, move |m| (m * 11 + i * 3) % 7 < 3))
        .collect();
    let covers: Vec<Cover> = tts.iter().map(|t| espresso::minimize_tt(t, None)).collect();
    let text = to_pla(&covers);
    let back = from_pla(&text).unwrap();
    for (c, tt) in back.iter().zip(&tts) {
        assert_eq!(&c.to_truth_table(5), tt);
    }
}

#[test]
fn pretty_printer_renders_generated_controllers() {
    use synthir::core::random::random_fsm;
    let spec = random_fsm(2, 3, 4, 9);
    let text = synthir::rtl::pretty::to_pretty(&spec.to_table_module(true));
    assert!(text.contains("module"));
    assert!(text.contains("fsm_state_vector state"));
    assert!(text.contains("always_ff"));
}

#[test]
fn format_conversion_preserves_sequencer_behaviour() {
    use synthir::core::format_conv::verticalize;
    use synthir::core::random::random_microprogram;
    let p = random_microprogram(8, 1, 4);
    let v = verticalize(&p).unwrap();
    // Same control flow: µPC traces agree, so the binary "unit" lane of the
    // vertical program decodes to the horizontal one-hot field.
    let conds = [1u64, 0, 1, 0, 0, 1];
    let th = p.simulate(&conds, 6);
    let tv = v.simulate(&conds, 6);
    for (h, v) in th.iter().zip(&tv) {
        let lane_h = if h[0] == 0 {
            0
        } else {
            h[0].trailing_zeros() as u128 + 1
        };
        assert_eq!(lane_h, v[0]);
    }
    // And the vertical control store is narrower.
    assert!(v.format().width() < p.format().width());
}
