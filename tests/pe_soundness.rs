//! Cross-crate integration tests: partial evaluation must be *sound* —
//! every specialized controller behaves exactly like its flexible parent
//! programmed with the same table.

use synthir::core::random::{random_fsm, random_microprogram};
use synthir::core::sequencer::{generate, SequencerOptions};
use synthir::netlist::Library;
use synthir::rtl::elaborate;
use synthir::sim::{check_seq_equiv, EquivOptions};
use synthir::synth::{compile, SynthOptions};

/// The compiled table FSM equals its uncompiled elaboration, across random
/// specs and all optimization paths (plain / annotated).
#[test]
fn compiled_fsm_equals_elaborated_fsm() {
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    for seed in 0..6u64 {
        let spec = random_fsm(2, 4, 3 + (seed as usize % 4), seed);
        for annotated in [false, true] {
            let module = spec.to_table_module(annotated);
            let elab = elaborate(&module).unwrap();
            let compiled = compile(&elab, &lib, &opts).unwrap();
            let verdict =
                check_seq_equiv(&elab.netlist, &compiled.netlist, &EquivOptions::new()).unwrap();
            assert!(
                verdict.is_equivalent(),
                "seed {seed} annotated {annotated}: {verdict:?}"
            );
        }
    }
}

/// The case style and the table style of the same spec are sequentially
/// equivalent after compilation.
#[test]
fn styles_agree_after_compile() {
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    for seed in [3u64, 9] {
        let spec = random_fsm(2, 3, 5, seed);
        let a = compile(&elaborate(&spec.to_case_module()).unwrap(), &lib, &opts).unwrap();
        let b = compile(
            &elaborate(&spec.to_table_module(true)).unwrap(),
            &lib,
            &opts,
        )
        .unwrap();
        let verdict = check_seq_equiv(&a.netlist, &b.netlist, &EquivOptions::new()).unwrap();
        assert!(verdict.is_equivalent(), "seed {seed}: {verdict:?}");
    }
}

/// Compiled sequencers (with every annotation enabled) keep the behaviour
/// of their microprogram.
#[test]
fn compiled_sequencer_matches_reference() {
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    for seed in 0..4u64 {
        let program = random_microprogram(10, 2, seed);
        let module = generate(
            &program,
            SequencerOptions {
                register_outputs: true,
                annotate_fsm: true,
                annotate_fields: true,
                ..Default::default()
            },
        )
        .unwrap();
        let elab = elaborate(&module).unwrap();
        let compiled = compile(&elab, &lib, &opts).unwrap();
        let verdict =
            check_seq_equiv(&elab.netlist, &compiled.netlist, &EquivOptions::new()).unwrap();
        assert!(verdict.is_equivalent(), "seed {seed}: {verdict:?}");
    }
}

/// The PCtrl flavours stay equivalent to their own elaborations (Auto and
/// Manual must not change behaviour while shrinking area).
#[test]
fn pctrl_optimization_is_sound() {
    use synthir::pctrl::rtl::{pctrl_module, PctrlStyle};
    use synthir::pctrl::MemoryConfig;
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    for cfg in [MemoryConfig::cached(), MemoryConfig::uncached()] {
        for style in [PctrlStyle::Bound, PctrlStyle::BoundAnnotated] {
            let module = pctrl_module(&cfg, style).unwrap();
            let elab = elaborate(&module).unwrap();
            let compiled = compile(&elab, &lib, &opts).unwrap();
            let mut eo = EquivOptions::new();
            eo.cycles = 128;
            let verdict = check_seq_equiv(&elab.netlist, &compiled.netlist, &eo).unwrap();
            assert!(
                verdict.is_equivalent(),
                "{} {style:?}: {verdict:?}",
                cfg.tag()
            );
        }
    }
}
