//! Integration tests pinning the paper's qualitative claims — the
//! executable form of EXPERIMENTS.md.

use synthir::netlist::Library;
use synthir::synth::SynthOptions;

/// §III-A / Fig. 5: partial evaluation of combinational tables lands near
/// the direct SOP implementation.
#[test]
fn fig5_tables_match_sop() {
    let pts = synthir_bench_shim::fig5_quick();
    for p in &pts {
        assert!(p.1 > 0.0);
        let ratio = p.2 / p.1;
        assert!(ratio > 0.6 && ratio < 1.5, "{}: {ratio:.3}", p.0);
    }
}

/// §III-A / Fig. 6: annotation closes the gap between the table and case
/// styles, most visibly at non-power-of-two state counts.
#[test]
fn fig6_annotation_closes_gap() {
    use synthir::core::random::random_fsm;
    use synthir::rtl::elaborate;
    use synthir::synth::compile;
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    // s = 3: the non-power-of-two state count where the unused code hurts
    // the unannotated table most (the paper's worst case together with 17).
    let spec = random_fsm(2, 4, 3, 0);
    let case = compile(&elaborate(&spec.to_case_module()).unwrap(), &lib, &opts)
        .unwrap()
        .area
        .total();
    let plain = compile(
        &elaborate(&spec.to_table_module(false)).unwrap(),
        &lib,
        &opts,
    )
    .unwrap()
    .area
    .total();
    let anno = compile(
        &elaborate(&spec.to_table_module(true)).unwrap(),
        &lib,
        &opts,
    )
    .unwrap()
    .area
    .total();
    assert!(plain >= anno * 0.999, "plain {plain:.0} anno {anno:.0}");
    let gap = (anno - case).abs() / case;
    assert!(gap < 0.15, "annotated-vs-case gap {gap:.3}");
    assert!(
        plain > case * 1.02,
        "plain {plain:.0} must exceed case {case:.0}"
    );
}

/// §III-B / Fig. 8: state propagation works combinationally, stops at flop
/// boundaries, and is restored by annotation for n <= 32 only.
#[test]
fn fig8_flop_boundary_behaviour() {
    use synthir_bench_shim::fig8_point;
    // No flop: ideal.
    let r = fig8_point(16, "none", "regular");
    assert!((r - 1.0).abs() < 0.05, "no-flop ratio {r:.3}");
    // Sync flop, regular: blocked.
    let r = fig8_point(16, "sync", "regular");
    assert!(r > 1.1, "sync regular ratio {r:.3}");
    // Sync flop, annotated: restored.
    let r = fig8_point(16, "sync", "annotated");
    assert!((r - 1.0).abs() < 0.05, "sync annotated ratio {r:.3}");
    // Beyond the 32-value effort limit the annotation is ignored.
    let r = fig8_point(64, "sync", "annotated");
    assert!(r > 1.05, "n=64 annotated ratio {r:.3}");
}

/// §III-C / Fig. 9: Auto halves Full; Manual's extra gain concentrates in
/// the uncached configuration. (Covered in depth by smpctrl's tests; this
/// is the cross-crate smoke check on one configuration.)
#[test]
fn fig9_auto_halves_full() {
    use synthir::pctrl::{synthesize, Flavor, MemoryConfig};
    let lib = Library::vt90();
    let opts = SynthOptions::default();
    let cfg = MemoryConfig::cached();
    let full = synthesize(&cfg, Flavor::Full, &lib, &opts).unwrap();
    let auto = synthesize(&cfg, Flavor::Auto, &lib, &opts).unwrap();
    let seq_ratio = auto.area.sequential / full.area.sequential;
    let comb_ratio = auto.area.combinational / full.area.combinational;
    assert!(
        seq_ratio > 0.3 && seq_ratio < 0.75,
        "seq ratio {seq_ratio:.3}"
    );
    assert!(
        comb_ratio > 0.3 && comb_ratio < 0.75,
        "comb ratio {comb_ratio:.3}"
    );
}

/// Minimal local reimplementations of the bench harness entry points (the
/// bench crate is not a dependency of the facade, to keep the dependency
/// graph acyclic).
mod synthir_bench_shim {
    use synthir::core::random::random_table;
    use synthir::logic::{Cover, TruthTable, ValueSet};
    use synthir::netlist::Library;
    use synthir::rtl::{elaborate, styles, Expr, Module, RegReset, Register, ResetKind};
    use synthir::synth::{compile, SynthOptions};

    pub fn fig5_quick() -> Vec<(String, f64, f64)> {
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        let mut out = Vec::new();
        for (d, w) in [(16usize, 4usize), (64, 4)] {
            let words = random_table(d, w, 5);
            let abits = d.trailing_zeros() as usize;
            let covers: Vec<Cover> = (0..w)
                .map(|b| {
                    let tt = TruthTable::from_fn(abits, |m| words[m] >> b & 1 != 0);
                    synthir::logic::espresso::minimize_tt(&tt, None)
                })
                .collect();
            let sop = styles::sop_module("s", abits, &covers);
            let tab = styles::table_module("t", abits, w, &words);
            let a = compile(&elaborate(&sop).unwrap(), &lib, &opts).unwrap();
            let b = compile(&elaborate(&tab).unwrap(), &lib, &opts).unwrap();
            out.push((format!("d{d}w{w}"), a.area.total(), b.area.total()));
        }
        out
    }

    pub fn fig8_point(n: usize, flop: &str, series: &str) -> f64 {
        let lib = Library::vt90();
        let opts = SynthOptions::default();
        let build = |generic: bool| -> Module {
            let sel_bits = n.trailing_zeros() as usize;
            let mut m = Module::new("f8");
            m.add_input("sel", sel_bits);
            m.add_input("a", 1);
            m.add_input("b", 1);
            let dec: Vec<Expr> = (0..n)
                .map(|i| Expr::reference("sel").eq_const(sel_bits, i as u128))
                .collect();
            m.add_wire("y", n, Expr::concat(dec));
            let bus = if flop == "none" {
                "y".to_string()
            } else {
                let kind = match flop {
                    "plain" => ResetKind::None,
                    "sync" => ResetKind::Sync,
                    _ => ResetKind::Async,
                };
                m.add_register(Register {
                    name: "r".into(),
                    width: n,
                    next: Expr::reference("y"),
                    reset: RegReset { kind, value: 0 },
                });
                "r".to_string()
            };
            m.add_output("bus", n, Expr::reference(&bus));
            if generic {
                let shifted = Expr::reference(&bus).shl_const(n, 1);
                m.add_wire("any", 1, Expr::reference(&bus).and(shifted).reduce_or());
                m.add_output(
                    "z",
                    1,
                    Expr::reference("any").mux(Expr::reference("a"), Expr::reference("b")),
                );
            } else {
                m.add_output("z", 1, Expr::reference("a"));
            }
            m
        };
        let direct = compile(&elaborate(&build(false)).unwrap(), &lib, &opts).unwrap();
        let mut generic = build(true);
        if series == "annotated" && flop != "none" {
            generic.annotate("r", ValueSet::one_hot(n as u32));
        }
        let g = compile(&elaborate(&generic).unwrap(), &lib, &opts).unwrap();
        g.area.total() / direct.area.total()
    }
}
